// Package engine is the hot-path repartitioning machine: a long-lived
// object that owns every piece of derived state the four-phase IGP
// pipeline needs, so that repeated Repartition calls over an evolving
// graph cost work proportional to what changed — not to the whole graph —
// and allocate (near) nothing in steady state.
//
// # Lifecycle and epoching
//
// An Engine is bound to one *graph.Graph at construction and consumes the
// graph's edit epoch (graph.Epoch) plus its bounded edit journal
// (graph.TouchedSince):
//
//   - The CSR snapshot (flat compressed-sparse-row arrays, the layout the
//     layering and gains kernels traverse) is refreshed in place — reusing
//     its arrays — only when the graph's epoch has moved since the last
//     refresh. Within one Repartition call the graph does not change, so
//     every stage and refinement round shares one snapshot.
//
//   - The partition-boundary set (every live vertex with at least one
//     neighbor in a different partition) is maintained incrementally. When
//     the journal covers the edits since the last sync, only the journaled
//     vertices, the vertices whose assignment changed since the engine
//     last looked, and the neighbors of the moved ones are re-examined;
//     a full O(n+m) boundary rebuild happens only on the first sync or
//     after journal overflow. The layering and refinement kernels seed
//     from this set, so their level-0/candidate passes never scan the full
//     arc array.
//
// # Scratch reuse rules
//
// The layering result, the refinement candidate pools, the balance size
// and target vectors, and the best-assignment snapshot used by the
// refinement driver are all arenas owned by the engine. They are grown to
// the largest graph seen and then reused: results returned by Layer and
// Gains are valid only until the engine's next call. An Engine is not safe
// for concurrent use; independent goroutines (e.g. simulated SPMD ranks)
// each own one.
//
// Correctness does not depend on the incrementality: the boundary set is
// kept exact (equivalence-fuzzed against the full scan in the tests), and
// a seeded layering of an exact boundary is bit-identical to the one-shot
// full-scan layering.
package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"time"

	"repro/internal/balance"
	"repro/internal/cancel"
	"repro/internal/coarsen"
	"repro/internal/graph"
	"repro/internal/layering"
	"repro/internal/lp"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/refine"
)

// ErrNeedRepartition reports that incremental balancing is impossible
// (even maximally relaxed LPs stay infeasible). The paper's remedy is to
// repartition from scratch or add the new vertices in several batches.
var ErrNeedRepartition = errors.New("core: incremental balance infeasible; repartition from scratch")

// errNoOldVertices reports a phase-1 precondition failure: incremental
// assignment needs at least one previously assigned vertex to grow from.
var errNoOldVertices = errors.New("core: assign: no previously assigned vertices; use a from-scratch partitioner first")

// ErrClosed reports a call on an engine whose session was ended by
// Close. A closed engine never becomes usable again; create a new one.
var ErrClosed = errors.New("core: engine closed; create a new engine")

// Options configures an Engine (and the core.Repartition wrapper).
type Options struct {
	// Solver is the simplex implementation (nil = lp.Bounded{}). A
	// stateful solver implementing lp.SessionSolver (e.g. "dual-warm")
	// is forked at New: the engine session holds a private instance so
	// retained warm-start bases live exactly as long as the engine.
	Solver lp.Solver
	// EpsilonMax is the paper's upper bound C on the relaxation factor;
	// stages try ε = 1, 2, … up to it (0 = default 8).
	EpsilonMax float64
	// MaxStages caps balancing stages (0 = default 16).
	MaxStages int
	// Tolerance allows partition sizes to deviate from their targets by
	// up to this many vertices (0 = the paper's exact balance). Positive
	// values trade residual imbalance for less vertex movement.
	Tolerance int
	// Accuracy is the target accuracy for approximate LP solvers (the
	// registered "mwu" multiplicative-weight solver): Optimal objectives
	// are guaranteed within a (1+Accuracy) factor of the true optimum.
	// 0 keeps the solver's default (0.05); exact solvers ignore it.
	Accuracy float64
	// Refine enables phase 4 (the IGPR variant).
	Refine bool
	// RefineOptions tunes phase 4 when enabled.
	RefineOptions refine.Options
	// Observer, if non-nil, receives stage-level Events during
	// Repartition (see Event for the ordering contract).
	Observer func(Event)
	// Parallelism is the worker count for the engine's sharded kernels:
	// the incremental boundary recompute, the phase 1 nearest-labeled
	// BFS, the layering BFS and the refinement gain scan. 0 means
	// runtime.GOMAXPROCS(0); 1 selects the exact sequential code path.
	// Results are bit-identical for every value — parallelism is purely
	// a latency property.
	Parallelism int
	// Multilevel enables the V-cycle mode for large graphs: coarsen by
	// same-partition heavy-edge matching down to a cheap size, solve the
	// coarsest graph (weighted balance LP, or spectral init when the
	// assignment is degenerate), then uncoarsen with per-level greedy
	// refinement — all between phase 1 and the balancing stage loop,
	// which becomes the fine polish. The hierarchy lives in the engine
	// session and is journal-repaired on warm calls (see
	// Stats.HierarchyRepaired). Disabled (the zero value), the flat
	// pipeline is untouched.
	Multilevel MultilevelOptions
	// FullRefresh disables every delta shortcut in the derived-state
	// pipeline: CSR snapshots are fully rebuilt instead of patched from
	// the edit journal, the boundary set is rebuilt from scratch on
	// every sync, cutset statistics come from partition.Cut's full arc
	// rescan, and phase 1 runs the one-shot Assign oracle. Results are
	// bit-identical either way (the incremental paths are fuzz-verified
	// against these oracles); the switch exists as an escape hatch and a
	// divergence-debugging lever.
	FullRefresh bool
}

func (o Options) solver() lp.Solver {
	if o.Solver == nil {
		return lp.Bounded{}
	}
	return o.Solver
}

func (o Options) epsMax() float64 {
	if o.EpsilonMax <= 0 {
		return 8
	}
	return o.EpsilonMax
}

func (o Options) maxStages() int {
	if o.MaxStages <= 0 {
		return 16
	}
	return o.MaxStages
}

func (o Options) procs() int {
	if o.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// StageStats records one balancing stage.
type StageStats struct {
	Epsilon  float64 // relaxation factor that produced a feasible LP
	Moved    int     // vertices moved
	LPVars   int     // dense-formulation columns (the paper's v)
	LPCons   int     // dense-formulation rows (the paper's c)
	LPPivots int     // simplex iterations
	MaxDelta int     // largest δ(i,j) this stage
}

// Stats reports everything Repartition did; the benchmark harness turns
// these into the paper's table columns.
type Stats struct {
	NewAssigned      int // vertices assigned in phase 1
	ClusterFallbacks int // disconnected new-vertex clusters placed by size
	Stages           []StageStats
	BalanceMoved     int
	Refine           *refine.Stats // nil unless Options.Refine
	CutBefore        partition.CutStats
	CutAfter         partition.CutStats
	AssignTime       time.Duration
	LayerTime        time.Duration
	BalanceTime      time.Duration
	RefineTime       time.Duration
	// Elapsed is the wall clock of the whole Repartition call, measured
	// inside the engine so it covers exactly the pipeline (not callers'
	// option conversion). It is set even when Repartition errors.
	Elapsed time.Duration
	// LPIterations is the total simplex pivots across every balance stage
	// and refinement round.
	LPIterations int
	// Parallelism is the worker count the engine's sharded kernels ran
	// with (1 = the sequential path).
	Parallelism int
	// LPParallel counts LP solves during this call that actually forked
	// the simplex kernels over the worker group (reached the per-pivot
	// work threshold); zero on the sequential path and for LPs too small
	// to be worth sharding. Results are bit-identical either way.
	LPParallel int
	// MWUFallbacks counts LP solves during this call that the
	// approximate "mwu" solver delegated to its exact fallback (the
	// instance was not graph shaped, or its quality bracket did not
	// close within the iteration budget). Always zero for exact solvers.
	MWUFallbacks int
	// WorkerBusy is the per-worker busy wall clock summed over every
	// parallel region of the call (boundary sync, layering BFS, gain
	// scans, pool sorts); index w is worker w. Empty on the sequential
	// path. Like Stages it is an arena reused across calls.
	WorkerBusy []time.Duration
	// CSRPatched counts snapshot refreshes during this call that were
	// served by the journal-driven partial CSR patch (only touched rows
	// rewritten) rather than a full rebuild. On a warm engine absorbing
	// small edits it equals the number of refreshes; zero means every
	// refresh rebuilt (first call, journal overflow, slot overflow, high
	// churn, or Options.FullRefresh).
	CSRPatched int
	// CutIncremental counts cutset evaluations during this call served
	// from the maintained boundary set (cost proportional to the
	// boundary) instead of partition.Cut's full arc rescan. It covers
	// the CutBefore/CutAfter reports and every refinement round's cut
	// poll.
	CutIncremental int
	// V-cycle reporting (zero unless Options.Multilevel is enabled).
	// Levels holds per-level hierarchy statistics, coarsest level last;
	// like Stages it is an arena reused across calls.
	Levels []LevelStats
	// CoarsenTime and UncoarsenTime are the V-cycle's two legs
	// (hierarchy update + coarsest solve; projection + per-level
	// refinement). TotalTime includes both.
	CoarsenTime   time.Duration
	UncoarsenTime time.Duration
	// HierarchyRepaired reports that every pre-existing hierarchy level
	// was journal-repaired this call — the warm V-cycle path. False on
	// the first multilevel call (nothing to repair) and whenever a level
	// had to be recoarsened (journal overflow, dead-slot bloat,
	// partition-count change, coarsening stall).
	HierarchyRepaired bool
	// CoarseMoved is the fine-vertex weight the coarsest solve moved;
	// SpectralInit reports that the coarsest graph was partitioned from
	// scratch by recursive spectral bisection (degenerate incoming
	// assignment) rather than rebalanced by the weighted LP.
	CoarseMoved  int
	SpectralInit bool
	// VCycleRefined counts the greedy per-level refinement moves applied
	// during uncoarsening (all levels).
	VCycleRefined int
}

// Clone returns a deep copy of the Stats, detached from the engine's
// arenas: unlike the value returned by Repartition — which is
// overwritten by the engine's next call — a clone stays valid forever.
func (s *Stats) Clone() *Stats {
	c := *s
	c.Stages = append([]StageStats(nil), s.Stages...)
	c.WorkerBusy = append([]time.Duration(nil), s.WorkerBusy...)
	c.Levels = append([]LevelStats(nil), s.Levels...)
	c.CutBefore.PerPart = append([]float64(nil), s.CutBefore.PerPart...)
	c.CutAfter.PerPart = append([]float64(nil), s.CutAfter.PerPart...)
	if s.Refine != nil {
		r := *s.Refine
		r.RoundPivots = append([]int(nil), s.Refine.RoundPivots...)
		c.Refine = &r
	}
	return &c
}

// TotalTime sums the phase times (including the V-cycle legs when
// multilevel mode ran).
func (s *Stats) TotalTime() time.Duration {
	return s.AssignTime + s.CoarsenTime + s.UncoarsenTime + s.LayerTime + s.BalanceTime + s.RefineTime
}

// reset readies a Stats arena for reuse, keeping the Stages, WorkerBusy
// and Levels capacity.
func (s *Stats) reset() {
	stages := s.Stages[:0]
	busy := s.WorkerBusy[:0]
	levels := s.Levels[:0]
	*s = Stats{Stages: stages, WorkerBusy: busy, Levels: levels}
}

// MaxLPSize returns the largest (vars, cons) over all balancing stages —
// the paper's "v = 188 and c = 126" statistic.
func (s *Stats) MaxLPSize() (vars, cons int) {
	for _, st := range s.Stages {
		if st.LPVars > vars {
			vars, cons = st.LPVars, st.LPCons
		}
	}
	return vars, cons
}

// Engine owns the long-lived repartitioning state for one graph. Create
// with New, then call Repartition after each batch of graph edits. The
// zero value is not usable.
type Engine struct {
	g      *graph.Graph
	opt    Options
	closed bool

	// Snapshot state.
	synced bool
	epoch  uint64
	csr    *graph.CSR

	// Incremental boundary tracker.
	prevPart   []int32 // assignment at the last sync (-2 = never seen)
	inBoundary []bool
	boundary   []graph.Vertex // exact list of the inBoundary members
	listDirty  bool           // boundary contains stale entries to compact
	stamps     par.Stamps     // per-sync recompute dedup / claim marker

	// Incremental partition-size and cut tracker: partSizes[q] is the
	// live assigned-vertex count of partition q as of the last sync
	// (exactly partition.SizesInto's definition), maintained through the
	// same journal/diff re-examination that keeps the boundary exact;
	// sizeAttr[v] is the partition v is currently counted under (-1 =
	// none). Cut reports are then served from the sorted boundary set
	// (partition.CutSeededInto) instead of a full arc rescan.
	trackedP  int // partition count the tracker was built for
	partSizes []int
	sizeAttr  []int32
	cutBuf    []graph.Vertex // sorted-boundary scratch for cut reports
	cutPPB    []float64      // PerPart arena for Stats.CutBefore
	cutPPA    []float64      // PerPart arena for Stats.CutAfter
	cutPPQ    []float64      // PerPart arena for the Cut accessor

	// Running delta-pipeline counters since the engine was created;
	// Repartition reports the per-call delta in Stats.CSRPatched /
	// Stats.CutIncremental, so work done through the public accessors
	// between calls never mutates a previously returned Stats arena.
	csrPatched     int
	cutIncremental int

	// Pending-unassigned tracker feeding the delta-aware phase 1: every
	// vertex observed live-but-Unassigned (or dead with a stale
	// assignment) by a sync re-examination, carried until the next
	// assign call consumes it. See assign.go.
	pendingNew []graph.Vertex
	inPending  []bool
	asg        assignScratch

	// Scratch arenas.
	lay      layering.Scratch
	gain     refine.Scratch
	balArena balance.Arena
	refArena refine.LPArena
	touchBuf []graph.Vertex
	sizes    []int
	targets  []int
	bestPart []int32
	flowBuf  []balance.Flow // per-stage flow arena (see balanceStage)
	stats    Stats          // reused result arena; see Repartition

	// V-cycle hierarchy, created lazily on the first multilevel
	// Repartition and journal-repaired on later calls (nil when
	// Options.Multilevel is disabled; dropped by Close).
	ml *coarsen.Hierarchy

	// The engine's sessionized LP solvers (deduplicated): polled for
	// Stats.LPParallel in Repartition. lpFallback is the subset that
	// delegates to an exact fallback, polled for Stats.MWUFallbacks.
	lpSolvers  []lp.ParallelSolver
	lpFallback []lp.FallbackSolver

	// Worker pool for the sharded kernels (see parallel.go): one
	// fork-join group shared with the layering and gains scratches so
	// per-worker busy times roll up in one place. Worker goroutines
	// exist only inside a region — nothing outlives a call.
	procs  int
	group  par.Group
	shards []par.Range
	bws    []boundaryWorker
	rb     rebuildTask
	df     diffTask

	// Parallel sorted-boundary scratch (see sortedBoundary).
	cutBuf2  []graph.Vertex
	cutHeads []int
	cs       cutSortTask
}

// neverSeen marks prevPart slots the engine has not synced yet; it never
// compares equal to a real partition id or Unassigned.
const neverSeen int32 = -2

// New returns an engine bound to g. The first Repartition (or Layer/Gains)
// call pays a full snapshot build; later calls are incremental.
//
// Stateful solvers (lp.SessionSolver, e.g. the warm-started "dual-warm"
// dual simplex) are forked here: the engine session owns a private
// instance whose retained bases live exactly as long as the engine, so
// the warm state of one engine's balance/refine LP stream is never
// shared with — or evicted by — another engine, and a one-shot
// core.Repartition (fresh engine per call) never reuses bases across
// calls. When the refine solver is the balance solver (the default),
// both phases share one session, so a basis retained by a balance stage
// can warm a structurally identical later solve and vice versa.
func New(g *graph.Graph, opt Options) *Engine {
	e := &Engine{g: g, procs: opt.procs()}
	base := opt.Solver
	if base == nil {
		base = lp.Bounded{}
	}
	// Sessions get the engine's worker group: WithParallelism covers the
	// LP kernels with zero call-site changes (see lp/parallel.go). The
	// accuracy option configures approximate session solvers ("mwu");
	// exact solvers ignore it.
	sessOpts := []lp.SessionOption{lp.WithWorkers(&e.group, e.procs)}
	if opt.Accuracy > 0 {
		sessOpts = append(sessOpts, lp.WithAccuracy(opt.Accuracy))
	}
	session := lp.Session(base, sessOpts...)
	opt.Solver = session
	switch rs := opt.RefineOptions.Solver; {
	case rs == nil || sameSolverInstance(rs, base):
		opt.RefineOptions.Solver = session
	default:
		opt.RefineOptions.Solver = lp.Session(rs, sessOpts...)
	}
	e.opt = opt
	if ps, ok := session.(lp.ParallelSolver); ok {
		e.lpSolvers = append(e.lpSolvers, ps)
	}
	if fs, ok := session.(lp.FallbackSolver); ok {
		e.lpFallback = append(e.lpFallback, fs)
	}
	if rs := opt.RefineOptions.Solver; !sameSolverInstance(rs, session) {
		if ps, ok := rs.(lp.ParallelSolver); ok {
			e.lpSolvers = append(e.lpSolvers, ps)
		}
		if fs, ok := rs.(lp.FallbackSolver); ok {
			e.lpFallback = append(e.lpFallback, fs)
		}
	}
	// The layering and gains scratches shard over the same worker count
	// and run their regions on the engine's fork-join group, so
	// Stats.WorkerBusy aggregates every kernel's per-worker busy time.
	e.lay.Procs = e.procs
	e.lay.Group = &e.group
	e.gain.Procs = e.procs
	e.gain.Group = &e.group
	return e
}

// lpParallel sums the forked-solve counters of the engine's LP sessions
// (the lifetime totals; Repartition reports per-call deltas).
func (e *Engine) lpParallel() int {
	total := 0
	for _, ps := range e.lpSolvers {
		total += ps.ParallelSolves()
	}
	return total
}

// lpFallbacks sums the exact-fallback counters of the engine's
// approximate LP sessions (lifetime totals; Repartition reports
// per-call deltas as Stats.MWUFallbacks).
func (e *Engine) lpFallbacks() int {
	total := 0
	for _, fs := range e.lpFallback {
		total += fs.Fallbacks()
	}
	return total
}

// sameSolverInstance reports whether a and b are the very same solver
// value — the only case where balance and refine should share one
// session. The Comparable guard keeps an exotic non-comparable solver
// type from panicking the interface comparison; such a value simply
// gets its own session.
func sameSolverInstance(a, b lp.Solver) bool {
	return reflect.TypeOf(a).Comparable() && a == b
}

// Graph returns the graph the engine is bound to (also after Close).
func (e *Engine) Graph() *graph.Graph { return e.g }

// Closed reports whether Close has ended this engine session.
func (e *Engine) Closed() bool { return e.closed }

// Close ends the engine session and releases everything it owns: the
// CSR snapshot, the boundary/size/pending trackers, every scratch
// arena, the worker group, and the sessionized LP solvers with their
// retained warm-start bases. A session pool evicting an idle engine
// calls Close so the memory is reclaimed deterministically rather than
// when the GC happens to notice.
//
// Invalidation hazard: everything the engine ever handed out points
// into those arenas — the *Stats returned by Repartition, Layer and
// Gains results, Boundary and Snapshot views, and CutStats.PerPart
// slices are all invalid after Close (clone what must outlive the
// session first, e.g. Stats.Clone). After Close, Repartition, Layer and
// Gains fail with an error matching ErrClosed; Snapshot and Boundary
// return nil. Close is idempotent and always returns nil. The graph is
// caller-owned and is not touched.
func (e *Engine) Close() error {
	if e.closed {
		return nil
	}
	// Drop every arena and the LP sessions (whose basis caches can be
	// large) in one sweep; keep only the graph binding, the identity
	// bits, and the closed flag.
	*e = Engine{g: e.g, procs: e.procs, closed: true}
	return nil
}

// Snapshot syncs and returns the engine's CSR view of the graph. The
// returned snapshot is owned by the engine and valid until the graph
// mutates (or the engine is closed); it is nil after Close.
func (e *Engine) Snapshot(a *partition.Assignment) *graph.CSR {
	if e.closed {
		return nil
	}
	e.sync(a)
	return e.csr
}

// Boundary syncs and returns the current partition-boundary vertex set.
// The slice is owned by the engine, unordered, duplicate-free, and valid
// until the next engine call; it is nil after Close.
func (e *Engine) Boundary(a *partition.Assignment) []graph.Vertex {
	if e.closed {
		return nil
	}
	e.sync(a)
	return e.boundary
}

// growTo readies the tracker arrays for an order-n graph.
func (e *Engine) growTo(n int) {
	for len(e.prevPart) < n {
		e.prevPart = append(e.prevPart, neverSeen)
	}
	for len(e.inBoundary) < n {
		e.inBoundary = append(e.inBoundary, false)
	}
	for len(e.sizeAttr) < n {
		e.sizeAttr = append(e.sizeAttr, -1)
	}
	for len(e.inPending) < n {
		e.inPending = append(e.inPending, false)
	}
	e.stamps.Grow(n)
}

// growSizes readies the per-partition size counters for p partitions.
func (e *Engine) growSizes(p int) {
	if cap(e.partSizes) < p {
		e.partSizes = make([]int, p)
	}
	e.partSizes = e.partSizes[:p]
}

// sync brings the CSR snapshot, the boundary set and the size/cut
// tracker up to date with the graph and the given assignment. Cost is
// O(changed region) plus one O(n) assignment diff; the snapshot refresh
// is journal-driven (graph.RefreshCSR), so it too rewrites only the
// touched rows unless the journal overflowed or churn forced a rebuild.
// Nothing is allocated once the arenas have grown.
func (e *Engine) sync(a *partition.Assignment) {
	n := e.g.Order()
	a.Grow(n)
	if !e.synced || e.g.Epoch() != e.epoch {
		touched, exact := e.g.TouchedSince(e.epoch, e.touchBuf[:0])
		e.touchBuf = touched[:0]
		if e.opt.FullRefresh {
			e.csr = e.g.RebuildCSRInto(e.csr)
			exact = false // and rebuild the boundary/size tracker too
		} else {
			var patched bool
			e.csr, patched = e.g.RefreshCSR(e.csr)
			if patched {
				e.csrPatched++
			}
		}
		wasSynced := e.synced
		e.epoch = e.g.Epoch()
		e.synced = true
		if !wasSynced || !exact || a.P != e.trackedP {
			e.rebuildBoundary(a)
			return
		}
		e.growTo(n)
		e.stamps.Next()
		// Structurally touched vertices re-examine themselves; an edge flip
		// cannot change a non-endpoint's membership (size attribution and
		// pending collection ride the same re-examination).
		for _, v := range touched {
			e.recompute(v, a)
		}
		e.diffAssignment(a)
		e.finishSync(a)
		return
	}
	if a.P != e.trackedP {
		e.rebuildBoundary(a)
		return
	}
	// Graph unchanged: only assignment moves can alter the boundary.
	e.growTo(n)
	e.stamps.Next()
	e.diffAssignment(a)
	e.finishSync(a)
}

// rebuildBoundary recomputes the boundary set, the per-partition size
// counters and the pending-unassigned set from scratch over the current
// snapshot. With Parallelism > 1 the scan is sharded by arc count;
// per-worker lists merged in shard order reproduce the sequential
// ascending-id layout exactly (see parallel.go).
func (e *Engine) rebuildBoundary(a *partition.Assignment) {
	n := e.csr.Order()
	e.growTo(n)
	e.growSizes(a.P)
	e.trackedP = a.P
	for q := range e.partSizes {
		e.partSizes[q] = 0
	}
	e.boundary = e.boundary[:0]
	e.listDirty = false
	if e.procs > 1 && n >= parBoundaryMin {
		e.rebuildBoundaryPar(a)
	} else {
		for v := 0; v < n; v++ {
			member := e.isBoundary(graph.Vertex(v), a)
			e.inBoundary[v] = member
			if member {
				e.boundary = append(e.boundary, graph.Vertex(v))
			}
			want := e.attrOf(graph.Vertex(v), a)
			e.sizeAttr[v] = want
			if want >= 0 {
				e.partSizes[want]++
			}
			e.collectPending(graph.Vertex(v), a, &e.pendingNew)
		}
	}
	copy(e.prevPart[:n], a.Part[:n])
}

// attrOf returns the partition v should be size-counted under: its
// assigned partition when live, none otherwise (partition.SizesInto's
// exact rule).
func (e *Engine) attrOf(v graph.Vertex, a *partition.Assignment) int32 {
	if !e.csr.Live[v] {
		return -1
	}
	if p := a.Part[v]; p >= 0 {
		return p
	}
	return -1
}

// moveAttr moves v's size attribution to its current partition,
// applying the count adjustment to sizes — e.partSizes on the
// sequential path, a worker-private delta array on the parallel one, so
// the attribution rule has exactly one copy. The caller must own v
// (sequential pass, disjoint shard, or won claim).
func (e *Engine) moveAttr(v graph.Vertex, a *partition.Assignment, sizes []int) {
	want := e.attrOf(v, a)
	if old := e.sizeAttr[v]; want != old {
		if old >= 0 {
			sizes[old]--
		}
		if want >= 0 {
			sizes[want]++
		}
		e.sizeAttr[v] = want
	}
}

// collectPending records v into dst (e.pendingNew on the sequential
// path, a worker-private buffer on the parallel one) for the next
// delta-aware assign call when it needs phase-1 attention: live but
// Unassigned (a new vertex), or dead with a stale assignment left
// behind (to be normalized). The flag is cleared when assign consumes
// the entry. The caller must own v (sequential pass, disjoint shard, or
// won claim).
func (e *Engine) collectPending(v graph.Vertex, a *partition.Assignment, dst *[]graph.Vertex) {
	if e.inPending[v] {
		return
	}
	live := e.csr.Live[v]
	p := a.Part[v]
	if (live && p < 0) || (!live && p >= 0) {
		e.inPending[v] = true
		*dst = append(*dst, v)
	}
}

// isBoundary reports whether v is live with ≥1 foreign neighbor.
func (e *Engine) isBoundary(v graph.Vertex, a *partition.Assignment) bool {
	if !e.csr.Live[v] {
		return false
	}
	pv := a.Part[v]
	for _, u := range e.csr.Row(v) {
		if a.Part[u] != pv {
			return true
		}
	}
	return false
}

// recompute re-evaluates v's boundary membership, size attribution and
// pending status, at most once per sync.
func (e *Engine) recompute(v graph.Vertex, a *partition.Assignment) {
	if !e.stamps.TryMark(v) {
		return
	}
	e.moveAttr(v, a, e.partSizes)
	e.collectPending(v, a, &e.pendingNew)
	now := e.isBoundary(v, a)
	if now == e.inBoundary[v] {
		return
	}
	e.inBoundary[v] = now
	if now {
		e.boundary = append(e.boundary, v)
	} else {
		e.listDirty = true
	}
}

// diffAssignment re-examines every vertex whose partition changed since
// the last sync, plus its neighbors (whose boundary status depends on it).
// With Parallelism > 1 the O(n) diff scan is sharded; vertices are
// claimed through the atomic recompute stamp so each is re-examined by
// exactly one worker (see parallel.go).
func (e *Engine) diffAssignment(a *partition.Assignment) {
	if e.procs > 1 && e.csr.Order() >= parBoundaryMin {
		e.diffAssignmentPar(a)
		return
	}
	n := e.csr.Order()
	for v := 0; v < n; v++ {
		if a.Part[v] == e.prevPart[v] {
			continue
		}
		e.recompute(graph.Vertex(v), a)
		for _, u := range e.csr.Row(graph.Vertex(v)) {
			e.recompute(u, a)
		}
	}
}

// finishSync compacts the boundary list and records the assignment.
func (e *Engine) finishSync(a *partition.Assignment) {
	if e.listDirty {
		kept := e.boundary[:0]
		for _, v := range e.boundary {
			if e.inBoundary[v] {
				kept = append(kept, v)
			}
		}
		e.boundary = kept
		e.listDirty = false
	}
	n := e.csr.Order()
	copy(e.prevPart[:n], a.Part[:n])
}

// cutStatsInto syncs and fills dst with cutset statistics served from
// the maintained boundary set — bit-identical to partition.Cut(e.g, a),
// floats included, at O(Σ deg(boundary)) cost (see CutSeededInto).
// perPart is the engine-owned PerPart arena for this report slot.
func (e *Engine) cutStatsInto(dst *partition.CutStats, perPart *[]float64, a *partition.Assignment) {
	e.sync(a)
	seeds := e.sortedBoundary()
	*perPart = partition.CutSeededInto(dst, *perPart, e.csr, a, seeds, e.partSizes)
	e.cutIncremental++
}

// cutWeight syncs and returns the current total cut weight from the
// boundary set — the refinement driver's per-round poll, bit-identical
// to partition.Cut(e.g, a).TotalWeight.
func (e *Engine) cutWeight(a *partition.Assignment) float64 {
	e.sync(a)
	seeds := e.sortedBoundary()
	e.cutIncremental++
	return partition.CutSeededWeight(e.csr, a, seeds)
}

// Cut syncs and reports cutset statistics for the engine's graph under
// a, maintained incrementally (or via the full rescan when
// Options.FullRefresh is set). The result's PerPart is an engine-owned
// arena overwritten by the next Cut call (a previously returned
// Stats.CutBefore/CutAfter is not affected); the scalar fields are
// plain values. It is bit-identical to partition.Cut(e.Graph(), a).
func (e *Engine) Cut(a *partition.Assignment) partition.CutStats {
	if e.closed {
		return partition.CutStats{}
	}
	if e.opt.FullRefresh {
		return partition.Cut(e.g, a)
	}
	var st partition.CutStats
	e.cutStatsInto(&st, &e.cutPPQ, a)
	return st
}

// Layer runs the boundary-seeded layering kernel over the engine's
// snapshot. The result is owned by the engine's scratch and invalidated by
// the next Layer call.
func (e *Engine) Layer(ctx context.Context, a *partition.Assignment) (*layering.Result, error) {
	if e.closed {
		return nil, ErrClosed
	}
	e.sync(a)
	return e.lay.LayerSeeded(ctx, e.csr, a, e.boundary)
}

// Gains runs the boundary-seeded refinement gains kernel over the engine's
// snapshot. The result is owned by the engine's scratch and invalidated by
// the next Gains call.
func (e *Engine) Gains(a *partition.Assignment, strict bool) (*refine.Candidates, error) {
	if e.closed {
		return nil, ErrClosed
	}
	e.sync(a)
	return e.gain.GainsSeeded(e.csr, a, strict, e.boundary)
}

// Repartition updates assignment a in place so it covers the engine's
// graph with balanced partitions and a small cutset, reusing the old
// partitioning. Vertices beyond a's original coverage — and any vertex
// explicitly set to partition.Unassigned — are treated as new. Repeated
// calls reuse the engine's snapshot, boundary set and scratch arenas.
//
// The context is honored throughout: between stages, per layering BFS
// level, and inside the simplex pivot loops. A done context aborts with
// an error matching cancel.ErrCanceled that wraps context.Cause; the
// assignment is never left mid-move — every vertex stays validly
// assigned (though possibly unbalanced) after an abort.
//
// The returned *Stats is an arena owned by the engine: it is
// overwritten by the next Repartition call. Use Stats.Clone to retain
// one (a shallow copy is not enough — Stages, WorkerBusy, the cut
// PerPart vectors and Refine all point into the arena).
func (e *Engine) Repartition(ctx context.Context, a *partition.Assignment) (*Stats, error) {
	if e.closed {
		return nil, ErrClosed
	}
	e.stats.reset()
	st := &e.stats
	opt := e.opt
	e.group.Reset()
	basePatched, baseCutInc := e.csrPatched, e.cutIncremental
	baseLPPar := e.lpParallel()
	baseLPFall := e.lpFallbacks()
	tStart := time.Now()
	defer func() {
		st.Elapsed = time.Since(tStart)
		st.CSRPatched = e.csrPatched - basePatched
		st.CutIncremental = e.cutIncremental - baseCutInc
		st.LPParallel = e.lpParallel() - baseLPPar
		st.MWUFallbacks = e.lpFallbacks() - baseLPFall
		for _, sg := range st.Stages {
			st.LPIterations += sg.LPPivots
		}
		if st.Refine != nil {
			st.LPIterations += st.Refine.Iterations
		}
		st.Parallelism = e.procs
		if e.procs > 1 {
			st.WorkerBusy = append(st.WorkerBusy[:0], e.group.Times()...)
		}
	}()

	if err := cancel.Check(ctx, "repartition"); err != nil {
		return st, err
	}
	t0 := time.Now()
	e.emit(Event{Kind: EventStart, Phase: PhaseAssign})
	assigned, fallbacks, err := e.assign(a)
	if err != nil {
		e.emit(Event{Kind: EventEnd, Phase: PhaseAssign, Elapsed: time.Since(t0)})
		return st, err
	}
	st.NewAssigned = assigned
	st.ClusterFallbacks = fallbacks
	st.AssignTime = time.Since(t0)
	e.emit(Event{Kind: EventEnd, Phase: PhaseAssign, Moved: assigned, Elapsed: st.AssignTime})
	if e.opt.FullRefresh {
		st.CutBefore = partition.Cut(e.g, a)
	} else {
		e.cutStatsInto(&st.CutBefore, &e.cutPPB, a)
	}

	if opt.Multilevel.Enabled {
		if err := e.runMultilevel(ctx, a, st); err != nil {
			return st, err
		}
	}

	if cap(e.targets) < a.P {
		e.targets = make([]int, a.P)
	}
	e.targets = partition.TargetsInto(e.targets, e.g.NumVertices(), a.P)
	targets := e.targets
	if cap(e.sizes) < a.P {
		e.sizes = make([]int, a.P)
	}
	solver := opt.solver()
	for stage := 0; stage < opt.maxStages(); stage++ {
		if err := cancel.Check(ctx, "balance stage"); err != nil {
			return st, err
		}
		sizes := a.SizesInto(e.sizes[:a.P], e.g)
		if maxAbsDev(sizes, targets) <= opt.Tolerance {
			break
		}
		tL := time.Now()
		e.emit(Event{Kind: EventStart, Phase: PhaseLayer, Stage: stage + 1})
		lay, err := e.Layer(ctx, a)
		if err != nil {
			// Close the span even on abort so observers pairing start/end
			// events never leak an open span.
			e.emit(Event{Kind: EventEnd, Phase: PhaseLayer, Stage: stage + 1, Elapsed: time.Since(tL)})
			return st, err
		}
		dL := time.Since(tL)
		st.LayerTime += dL
		e.emit(Event{Kind: EventEnd, Phase: PhaseLayer, Stage: stage + 1, Elapsed: dL})

		tB := time.Now()
		e.emit(Event{Kind: EventStart, Phase: PhaseBalance, Stage: stage + 1})
		stageStat, ok, err := balanceStage(ctx, a, lay, sizes, targets, solver, opt.epsMax(), opt.Tolerance, &e.balArena, &e.flowBuf)
		dB := time.Since(tB)
		st.BalanceTime += dB
		if err != nil || !ok {
			e.emit(Event{Kind: EventEnd, Phase: PhaseBalance, Stage: stage + 1, Elapsed: dB})
			if err != nil {
				return st, err
			}
			return st, fmt.Errorf("%w (stage %d, sizes %v)", ErrNeedRepartition, stage, sizes)
		}
		st.Stages = append(st.Stages, stageStat)
		st.BalanceMoved += stageStat.Moved
		e.emit(Event{Kind: EventEnd, Phase: PhaseBalance, Stage: stage + 1,
			Epsilon: stageStat.Epsilon, Moved: stageStat.Moved, Elapsed: dB})
		if stageStat.Moved == 0 {
			// A feasible stage that moved nothing makes no progress: either
			// the targets are met (checked at the top of the loop) or every
			// residual surplus rounded to zero under the relaxation — in
			// both cases iterating further changes nothing.
			break
		}
	}
	sizes := a.SizesInto(e.sizes[:a.P], e.g)
	if maxAbsDev(sizes, targets) > opt.Tolerance {
		return st, fmt.Errorf("%w (after %d stages, sizes %v)", ErrNeedRepartition, len(st.Stages), sizes)
	}

	if opt.Refine {
		tR := time.Now()
		e.emit(Event{Kind: EventStart, Phase: PhaseRefine})
		// New already resolved RefineOptions.Solver to a (possibly
		// shared) session; it is never nil here.
		ro := opt.RefineOptions
		if opt.Observer != nil && ro.OnRound == nil {
			ro.OnRound = func(round, moved int) {
				e.emit(Event{Kind: EventRound, Phase: PhaseRefine, Stage: round, Moved: moved})
			}
		}
		rst, err := e.runRefine(ctx, a, ro)
		st.RefineTime = time.Since(tR)
		st.Refine = rst
		moved := 0
		if rst != nil {
			moved = rst.Moved
		}
		e.emit(Event{Kind: EventEnd, Phase: PhaseRefine, Moved: moved, Elapsed: st.RefineTime})
		if err != nil {
			return st, err
		}
	}
	if e.opt.FullRefresh {
		st.CutAfter = partition.Cut(e.g, a)
	} else {
		e.cutStatsInto(&st.CutAfter, &e.cutPPA, a)
	}
	return st, nil
}

// balanceStage runs one layer→LP→move stage, escalating ε until
// feasible. Formulations go through the engine's reused arena, so a
// steady-state stage allocates nothing building its LP — and because
// the ε escalation and successive stages only change RHS and bounds
// over an unchanged pair structure, a warm-started solver resumes each
// of these solves from the previous basis.
func balanceStage(ctx context.Context, a *partition.Assignment, lay *layering.Result, sizes, targets []int, solver lp.Solver, epsMax float64, tol int, ar *balance.Arena, flowBuf *[]balance.Flow) (StageStats, bool, error) {
	for eps := 1.0; eps <= epsMax; eps++ {
		m, err := ar.FormulateTol(lay.Delta, sizes, targets, eps, tol)
		if err != nil {
			return StageStats{}, false, err
		}
		flows, sol, err := balance.SolveInto(ctx, m, solver, *flowBuf)
		if flows != nil {
			*flowBuf = flows // keep the grown backing array for the next stage
		}
		if err != nil {
			return StageStats{}, false, err
		}
		if sol.Status != lp.Optimal {
			continue // relax further
		}
		moved, err := balance.Apply(a, lay, flows)
		if err != nil {
			return StageStats{}, false, err
		}
		vars, cons := lp.DenseSize(m.Prob)
		maxDelta := 0
		for _, row := range lay.Delta {
			for _, d := range row {
				if d > maxDelta {
					maxDelta = d
				}
			}
		}
		return StageStats{
			Epsilon:  eps,
			Moved:    moved,
			LPVars:   vars,
			LPCons:   cons,
			LPPivots: sol.Iterations,
			MaxDelta: maxDelta,
		}, true, nil
	}
	return StageStats{}, false, nil
}

// runRefine is the engine's phase 4: the shared refine.Drive loop fed
// with boundary-seeded gain scans and boundary-seeded per-round cut
// polls, formulating into the engine's reused LP arena and keeping the
// best-seen assignment in the engine's reused best-part arena.
func (e *Engine) runRefine(ctx context.Context, a *partition.Assignment, opt refine.Options) (*refine.Stats, error) {
	opt.Arena = &e.refArena
	if !e.opt.FullRefresh {
		opt.CutWeight = func() float64 { return e.cutWeight(a) }
	}
	st, best, err := refine.Drive(ctx, e.g, a, opt, func(strict bool) (*refine.Candidates, error) {
		return e.Gains(a, strict)
	}, e.bestPart)
	e.bestPart = best
	return st, err
}

// Assign implements phase 1: every live vertex of g that a leaves
// Unassigned is mapped to the partition of the nearest assigned vertex.
// New vertices unreachable from any assigned vertex are grouped into
// connected clusters, each placed on the currently least-loaded partition
// (the paper's fallback rule). Returns the number of vertices assigned and
// the number of fallback clusters.
func Assign(g *graph.Graph, a *partition.Assignment) (assigned, clusterFallbacks int, err error) {
	a.Grow(g.Order())
	hasOld := false
	for v := 0; v < g.Order(); v++ {
		if g.Alive(graph.Vertex(v)) && a.Part[v] >= 0 {
			hasOld = true
			break
		}
	}
	if !hasOld {
		return 0, 0, errNoOldVertices
	}
	// Clear assignments of dead vertices (deleted since last time).
	for v := 0; v < g.Order(); v++ {
		if !g.Alive(graph.Vertex(v)) {
			a.Part[v] = partition.Unassigned
		}
	}

	winner, _ := g.NearestLabeled(a.Part)
	var orphans []graph.Vertex
	for v := 0; v < g.Order(); v++ {
		if !g.Alive(graph.Vertex(v)) || a.Part[v] >= 0 {
			continue
		}
		if winner[v] >= 0 {
			a.Part[v] = winner[v]
			assigned++
		} else {
			orphans = append(orphans, graph.Vertex(v))
		}
	}
	if len(orphans) == 0 {
		return assigned, 0, nil
	}

	// Disconnected new clusters: place each whole component on the
	// least-loaded partition.
	sub, _, newToOld := g.InducedSubgraph(orphans)
	comp, nc := sub.Components()
	sizes := a.Sizes(g)
	clusters := make([][]graph.Vertex, nc)
	for sv, c := range comp {
		if c >= 0 {
			clusters[c] = append(clusters[c], newToOld[sv])
		}
	}
	for _, cluster := range clusters {
		best := 0
		for q := 1; q < a.P; q++ {
			if sizes[q] < sizes[best] {
				best = q
			}
		}
		for _, v := range cluster {
			a.Part[v] = int32(best)
			assigned++
		}
		sizes[best] += len(cluster)
		clusterFallbacks++
	}
	return assigned, clusterFallbacks, nil
}

func maxAbsDev(sizes, targets []int) int {
	d := 0
	for i := range sizes {
		dev := sizes[i] - targets[i]
		if dev < 0 {
			dev = -dev
		}
		if dev > d {
			d = dev
		}
	}
	return d
}
