package engine

import (
	"context"
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"repro/internal/graph"
	"repro/internal/layering"
	"repro/internal/partition"
	"repro/internal/refine"
)

// requireSameLayer asserts two layerings agree on every exported field.
func requireSameLayer(t testing.TB, got, want *layering.Result, p int) {
	t.Helper()
	if !reflect.DeepEqual(got.Label, want.Label) {
		t.Fatal("Label diverges")
	}
	if !reflect.DeepEqual(got.Level, want.Level) {
		t.Fatal("Level diverges")
	}
	if !reflect.DeepEqual(got.Delta, want.Delta) {
		t.Fatal("Delta diverges")
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			gp, wp := got.Pool(int32(i), int32(j)), want.Pool(int32(i), int32(j))
			if len(gp) != len(wp) {
				t.Fatalf("pool(%d,%d) length %d, want %d", i, j, len(gp), len(wp))
			}
			for k := range gp {
				if gp[k] != wp[k] {
					t.Fatalf("pool(%d,%d)[%d] = %d, want %d", i, j, k, gp[k], wp[k])
				}
			}
		}
	}
}

// requireSameGains asserts two candidate sets agree on every exported
// field.
func requireSameGains(t testing.TB, got, want *refine.Candidates, p int) {
	t.Helper()
	if !reflect.DeepEqual(got.B, want.B) {
		t.Fatal("B diverges")
	}
	if !reflect.DeepEqual(got.Gain, want.Gain) {
		t.Fatal("Gain diverges")
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			gp, wp := got.Pool(int32(i), int32(j)), want.Pool(int32(i), int32(j))
			if len(gp) != len(wp) {
				t.Fatalf("pool(%d,%d) length diverges", i, j)
			}
			for k := range gp {
				if gp[k] != wp[k] {
					t.Fatalf("pool(%d,%d)[%d] diverges", i, j, k)
				}
			}
		}
	}
}

// requireSameBoundary asserts a parallel engine's boundary equals the
// brute-force set (the list itself is documented unordered).
func requireSameBoundary(t testing.TB, got []graph.Vertex, want map[graph.Vertex]bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("boundary has %d vertices, want %d", len(got), len(want))
	}
	seen := map[graph.Vertex]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate boundary vertex %d", v)
		}
		seen[v] = true
		if !want[v] {
			t.Fatalf("vertex %d wrongly in boundary", v)
		}
	}
}

// TestParallelEngineKernelEquivalence drives sequential and parallel
// engines through the same random edit sequence and requires
// bit-identical boundary sets, layerings and gain candidates at every
// step, for several worker counts.
func TestParallelEngineKernelEquivalence(t *testing.T) {
	for _, procs := range []int{2, 3, 7, 16} {
		gSeq, aSeq := editableGraph(t, 350, 7, 61)
		gPar := gSeq.Clone()
		aPar := aSeq.Clone()
		eSeq := New(gSeq, Options{Parallelism: 1})
		ePar := New(gPar, Options{Parallelism: procs})
		rngSeq := rand.New(rand.NewSource(71))
		rngPar := rand.New(rand.NewSource(71))
		for iter := 0; iter < 40; iter++ {
			for k := 0; k < 1+rngSeq.Intn(4); k++ {
				randomEdit(gSeq, aSeq, rngSeq)
			}
			for k := 0; k < 1+rngPar.Intn(4); k++ {
				randomEdit(gPar, aPar, rngPar)
			}
			requireSameBoundary(t, ePar.Boundary(aPar), bruteBoundary(gPar, aPar))
			laySeq, err := eSeq.Layer(context.Background(), aSeq)
			if err != nil {
				t.Fatal(err)
			}
			layPar, err := ePar.Layer(context.Background(), aPar)
			if err != nil {
				t.Fatal(err)
			}
			requireSameLayer(t, layPar, laySeq, aSeq.P)
			gSeqC, err := eSeq.Gains(aSeq, iter%2 == 0)
			if err != nil {
				t.Fatal(err)
			}
			gParC, err := ePar.Gains(aPar, iter%2 == 0)
			if err != nil {
				t.Fatal(err)
			}
			requireSameGains(t, gParC, gSeqC, aSeq.P)
		}
	}
}

// TestParallelRepartitionMatchesSequential is the end-to-end criterion:
// full IGPR repartitioning through parallel engines must produce the
// exact assignments, cuts and movement stats of the sequential engine
// across an evolving graph.
func TestParallelRepartitionMatchesSequential(t *testing.T) {
	gBase, aBase := editableGraph(t, 300, 6, 83)
	for _, procs := range []int{2, 7} {
		gPar := gBase.Clone()
		aPar := aBase.Clone()
		ePar := New(gPar, Options{Refine: true, Parallelism: procs})
		rngSeq := rand.New(rand.NewSource(89))
		rngPar := rand.New(rand.NewSource(89))
		gS := gBase.Clone() // private sequential copy per procs value
		aS := aBase.Clone()
		eS := New(gS, Options{Refine: true, Parallelism: 1})
		for step := 0; step < 5; step++ {
			for k := 0; k < 8; k++ {
				randomEdit(gS, aS, rngSeq)
				randomEdit(gPar, aPar, rngPar)
			}
			stS, errS := eS.Repartition(context.Background(), aS)
			stP, errP := ePar.Repartition(context.Background(), aPar)
			if (errS == nil) != (errP == nil) {
				t.Fatalf("procs=%d step %d: error mismatch: %v vs %v", procs, step, errS, errP)
			}
			if errS != nil {
				t.Skipf("procs=%d step %d: infeasible on this sequence: %v", procs, step, errS)
			}
			if !reflect.DeepEqual(aS.Part, aPar.Part) {
				t.Fatalf("procs=%d step %d: parallel assignment diverges", procs, step)
			}
			if stS.BalanceMoved != stP.BalanceMoved || len(stS.Stages) != len(stP.Stages) {
				t.Fatalf("procs=%d step %d: stats diverge", procs, step)
			}
			if stP.Parallelism != procs {
				t.Fatalf("procs=%d: Stats.Parallelism = %d", procs, stP.Parallelism)
			}
		}
	}
}

// TestParallelWorkerBusyReported: a parallel Repartition must roll up
// per-worker busy time for exactly the configured worker count.
func TestParallelWorkerBusyReported(t *testing.T) {
	g, a := editableGraph(t, 400, 8, 97)
	e := New(g, Options{Parallelism: 4})
	// Unbalance so at least one balance stage (and its layering) runs.
	moved := 0
	for v := range a.Part {
		if a.Part[v] == 0 && moved < 25 {
			a.Part[v] = 1
			moved++
		}
	}
	st, err := e.Repartition(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Parallelism != 4 {
		t.Fatalf("Parallelism = %d, want 4", st.Parallelism)
	}
	if len(st.WorkerBusy) != 4 {
		t.Fatalf("WorkerBusy has %d slots, want 4", len(st.WorkerBusy))
	}
	if st.WorkerBusy[0] <= 0 {
		t.Fatal("worker 0 reported no busy time")
	}
	// Sequential engines report no per-worker breakdown.
	g2, a2 := editableGraph(t, 100, 4, 98)
	e2 := New(g2, Options{Parallelism: 1})
	st2, err := e2.Repartition(context.Background(), a2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Parallelism != 1 || len(st2.WorkerBusy) != 0 {
		t.Fatalf("sequential stats: Parallelism=%d WorkerBusy=%v", st2.Parallelism, st2.WorkerBusy)
	}
}

// TestSteadyStateParallelLayerAllocs locks the parallel layering kernel
// at zero steady-state allocation: per-worker scratch lives in the
// engine's arenas and goroutines are spawned through pre-built thunks.
func TestSteadyStateParallelLayerAllocs(t *testing.T) {
	g, a := editableGraph(t, 500, 8, 5)
	e := New(g, Options{Parallelism: 4})
	if _, err := e.Layer(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.Layer(context.Background(), a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state parallel Layer allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSteadyStateParallelGainsAllocs: the parallel gain scan must also
// stay 0 allocs/op through a warm engine.
func TestSteadyStateParallelGainsAllocs(t *testing.T) {
	g, a := editableGraph(t, 500, 8, 5)
	e := New(g, Options{Parallelism: 4})
	if _, err := e.Gains(a, false); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.Gains(a, false); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state parallel Gains allocates %.1f objects/op, want 0", allocs)
	}
}

// TestParallelSortedBoundaryEquivalence: the sharded sort + k-way merge
// behind the cut reports must reproduce the sequential ascending sort
// exactly, on a boundary large enough to take the parallel path, and
// keep doing so across calls (the two scratch buffers swap roles).
func TestParallelSortedBoundaryEquivalence(t *testing.T) {
	for _, procs := range []int{2, 3, 7} {
		g, a := editableGraph(t, 3000, 8, 11)
		e := New(g, Options{Parallelism: procs})
		e.sync(a)
		want := append([]graph.Vertex(nil), e.boundary...)
		slices.Sort(want)
		if len(want) < parCutSortMin {
			t.Fatalf("boundary has %d vertices, below parCutSortMin=%d — the parallel path is untested",
				len(want), parCutSortMin)
		}
		for call := 0; call < 3; call++ {
			got := e.sortedBoundary()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("procs=%d call %d: sorted boundary diverges from sequential sort", procs, call)
			}
		}
	}
}

// TestParallelOrphanClusteringEquivalence: a large disconnected cluster
// of new vertices floods level-synchronously over the worker group; the
// resulting assignment and fallback count must match the sequential
// engine exactly.
func TestParallelOrphanClusteringEquivalence(t *testing.T) {
	build := func(procs int) (*partition.Assignment, int, int) {
		g, a := editableGraph(t, 400, 6, 13)
		e := New(g, Options{Parallelism: procs})
		e.sync(a) // warm the journal so the blob arrives as a delta
		// A hub-and-spoke blob, disconnected from the old region: the
		// level-1 frontier is all 199 spokes, far above parAsgMin.
		blob := make([]graph.Vertex, 200)
		for i := range blob {
			blob[i] = g.AddVertex(1)
		}
		a.Grow(g.Order())
		for i := 1; i < len(blob); i++ {
			if err := g.AddEdge(blob[0], blob[i], 1); err != nil {
				t.Fatal(err)
			}
			if j := (i * 7) % len(blob); j != i {
				g.AddEdgeIfAbsent(blob[i], blob[j], 1)
			}
		}
		assigned, fallbacks, err := e.assign(a)
		if err != nil {
			t.Fatal(err)
		}
		return a, assigned, fallbacks
	}
	aSeq, nSeq, fSeq := build(1)
	if fSeq != 1 {
		t.Fatalf("sequential run placed %d fallback clusters, want 1", fSeq)
	}
	for _, procs := range []int{2, 3, 7} {
		a, n, f := build(procs)
		if n != nSeq || f != fSeq {
			t.Fatalf("procs=%d: assigned/fallbacks %d/%d, want %d/%d", procs, n, f, nSeq, fSeq)
		}
		if !reflect.DeepEqual(a.Part, aSeq.Part) {
			t.Fatalf("procs=%d: orphan clustering assignment diverges from sequential", procs)
		}
	}
}

// TestParallelismResolution: 0 resolves to GOMAXPROCS, negatives clamp
// to the sequential path.
func TestParallelismResolution(t *testing.T) {
	if got := (Options{}).procs(); got < 1 {
		t.Fatalf("default procs = %d", got)
	}
	if got := (Options{Parallelism: -3}).procs(); got != 1 {
		t.Fatalf("negative parallelism resolved to %d, want 1", got)
	}
	if got := (Options{Parallelism: 7}).procs(); got != 7 {
		t.Fatalf("explicit parallelism resolved to %d, want 7", got)
	}
}
