// The engine's delta-aware phase 1: nearest-partition assignment of new
// vertices, seeded from the pending-unassigned set the sync machinery
// collects from the edit journal and the assignment diff — so a warm
// engine whose graph gained a handful of vertices never traverses the
// unchanged region at all, where the one-shot oracle (Assign) floods the
// whole graph from every labeled vertex.
//
// The kernel is a level-synchronous multi-source BFS out of the labeled
// region into the unassigned region, sharded over the engine's worker
// group with the same claim-stamp + shard-order-merge discipline as the
// layering kernel. Determinism needs one extra ingredient here because
// the oracle's tie-break is discovery-order ("the label that reaches the
// vertex first in BFS order"): an atomic claim decides only membership,
// so each claimed vertex recomputes its canonical discoverer — the
// frontier neighbor with the smallest frontier position — and the next
// frontier is sorted by (discoverer position, row index), which is
// exactly the order the sequential queue would have produced. By
// induction the frontier sequence, every winner, and therefore the whole
// phase-1 result are bit-identical to graph.NearestLabeled's restricted
// to the unassigned region, for every worker count.
package engine

import (
	"math"
	"slices"
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/partition"
)

// parAsgMin is the seed/frontier size below which phase-1 work runs
// inline instead of forking the worker group (the layering kernel's
// parLevelMin rule; the threshold depends only on input size, so worker
// count never changes which path runs).
const parAsgMin = 48

// asgCand is one claimed BFS candidate and its canonical discovery key:
// (frontier position of the discoverer) << 32 | (row index of the
// candidate within the discoverer's row). Keys are unique — one row slot
// names one vertex — so sorting by key is a total order reproducing the
// sequential discovery sequence.
type asgCand struct {
	key uint64
	v   graph.Vertex
}

// candSorter is a reused sort.Interface over the candidate buffer.
type candSorter struct{ cs []asgCand }

func (s *candSorter) Len() int           { return len(s.cs) }
func (s *candSorter) Less(i, j int) bool { return s.cs[i].key < s.cs[j].key }
func (s *candSorter) Swap(i, j int)      { s.cs[i], s.cs[j] = s.cs[j], s.cs[i] }

// asgWorker is one worker's private arena for phase-1 regions.
type asgWorker struct {
	srcs  []graph.Vertex
	cands []asgCand
}

// assignScratch holds the reusable state of the delta-aware phase 1.
// All buffers grow to the largest call seen and are then reused; a call
// with an empty pending set touches none of them.
type assignScratch struct {
	stamps    par.Stamps // discovered (sources, labeled vertices, clustered orphans)
	posStamps par.Stamps // current-frontier membership, advanced per level
	winner    []int32
	posOf     []int32
	seeds     []graph.Vertex
	sources   []graph.Vertex
	frontier  []graph.Vertex
	next      []graph.Vertex
	cands     []asgCand
	orphans   []graph.Vertex
	comp      []graph.Vertex
	sizes     []int
	ws        []asgWorker
	shards    []par.Range
	sorter    candSorter
	srcT      srcTask
	lvlT      asgLevelTask
	orphT     orphanTask
}

// grow readies the per-vertex arrays and per-worker arenas.
func (s *assignScratch) grow(n, workers int) {
	s.stamps.Grow(n)
	s.posStamps.Grow(n)
	if cap(s.winner) < n {
		s.winner = make([]int32, n)
	}
	s.winner = s.winner[:n]
	if cap(s.posOf) < n {
		s.posOf = make([]int32, n)
	}
	s.posOf = s.posOf[:n]
	for len(s.ws) < workers {
		s.ws = append(s.ws, asgWorker{})
	}
}

// clearPending drops every pending entry (they have all been resolved).
func (e *Engine) clearPending() {
	for _, v := range e.pendingNew {
		e.inPending[v] = false
	}
	e.pendingNew = e.pendingNew[:0]
}

// assign is the engine's phase 1: it syncs (collecting the pending set
// from the journal and the assignment diff), normalizes stale dead
// assignments, maps every pending live vertex to the partition of the
// nearest assigned vertex, and places unreachable clusters on the
// least-loaded partitions — bit-identical to the one-shot Assign oracle,
// at cost proportional to the new region plus its labeled rim. With
// Options.FullRefresh it delegates to the oracle outright.
func (e *Engine) assign(a *partition.Assignment) (assigned, clusterFallbacks int, err error) {
	e.sync(a)
	if e.opt.FullRefresh {
		e.clearPending()
		return Assign(e.g, a)
	}
	s := &e.asg
	n := e.csr.Order()

	// Resolve the pending set: normalize dead vertices that still carry
	// an assignment, drop entries the caller assigned meanwhile, keep
	// the genuinely new. Entries are only cleared on success, so an
	// errored call retries with nothing lost.
	seeds := s.seeds[:0]
	for _, v := range e.pendingNew {
		if !e.csr.Live[v] {
			a.Part[v] = partition.Unassigned
			continue
		}
		if a.Part[v] < 0 {
			seeds = append(seeds, v)
		}
	}
	s.seeds = seeds
	hasOld := false
	for _, c := range e.partSizes {
		if c > 0 {
			hasOld = true
			break
		}
	}
	if !hasOld {
		return 0, 0, errNoOldVertices
	}
	if len(seeds) == 0 {
		e.clearPending()
		return 0, 0, nil
	}
	slices.Sort(seeds)

	// Sources: the assigned rim of the unassigned region — every labeled
	// neighbor of a seed, deduped by claim and sorted ascending (the
	// relative order the oracle's all-labeled initial queue gives them,
	// since non-rim labeled vertices discover nothing).
	procs := e.procs
	s.grow(n, procs)
	s.stamps.Next()
	srcProcs := procs
	if len(seeds) < parAsgMin {
		srcProcs = 1
	}
	s.shards = par.Split(s.shards[:0], len(seeds), srcProcs)
	s.srcT = srcTask{e: e, a: a}
	e.group.Run(len(s.shards), &s.srcT)
	s.srcT = srcTask{}
	sources := s.sources[:0]
	for w := range s.shards {
		sources = append(sources, s.ws[w].srcs...)
	}
	slices.Sort(sources)
	s.sources = sources

	// BFS out of the rim, restricted to unassigned vertices.
	for i, v := range sources {
		s.winner[v] = a.Part[v]
		s.posOf[v] = int32(i)
	}
	frontier := append(s.frontier[:0], sources...)
	next := s.next[:0]
	for len(frontier) > 0 {
		s.posStamps.Next()
		for i, v := range frontier {
			s.posStamps.TryMark(v)
			s.posOf[v] = int32(i)
		}
		lvlProcs := procs
		if len(frontier) < parAsgMin {
			lvlProcs = 1
		}
		s.shards = par.Split(s.shards[:0], len(frontier), lvlProcs)
		s.lvlT = asgLevelTask{e: e, a: a, frontier: frontier}
		e.group.Run(len(s.shards), &s.lvlT)
		s.lvlT = asgLevelTask{}
		cands := s.cands[:0]
		for w := range s.shards {
			cands = append(cands, s.ws[w].cands...)
		}
		s.sorter.cs = cands
		sort.Sort(&s.sorter)
		s.sorter.cs = nil
		s.cands = cands
		next = next[:0]
		for _, c := range cands {
			next = append(next, c.v)
		}
		frontier, next = next, frontier
	}
	s.frontier, s.next = frontier[:0], next[:0]

	// Apply winners in ascending seed order (the oracle's application
	// order), tracking partition sizes for the orphan fallback.
	sizes := append(s.sizes[:0], e.partSizes...)
	orphans := s.orphans[:0]
	for _, v := range seeds {
		if s.stamps.Marked(v) {
			p := s.winner[v]
			a.Part[v] = p
			sizes[p]++
			assigned++
		} else {
			orphans = append(orphans, v)
		}
	}
	s.orphans = orphans
	s.sizes = sizes

	// Disconnected new clusters: flood each component within the
	// unassigned region (ascending first-seed order, the oracle's
	// component order) and place it whole on the least-loaded partition.
	// The flood is level-synchronous so large components shard over the
	// worker group; membership is a claim, and the component *set* is a
	// graph property independent of visit order, so the uniform
	// per-component assignment (and the least-loaded choice, which sees
	// only component sizes in ascending first-seed order) is bit-identical
	// for every worker count.
	comp := s.comp[:0]
	for _, seed := range orphans {
		if !s.stamps.TryMark(seed) {
			continue // already swept into an earlier cluster
		}
		comp = append(comp[:0], seed)
		for lo := 0; lo < len(comp); {
			hi := len(comp)
			frontier := comp[lo:hi]
			if procs > 1 && len(frontier) >= parAsgMin {
				s.shards = par.Split(s.shards[:0], len(frontier), procs)
				s.orphT = orphanTask{e: e, a: a, frontier: frontier}
				e.group.Run(len(s.shards), &s.orphT)
				s.orphT = orphanTask{}
				for w := range s.shards {
					comp = append(comp, s.ws[w].srcs...)
				}
			} else {
				for _, v := range frontier {
					for _, u := range e.csr.Row(v) {
						if a.Part[u] < 0 && s.stamps.TryMark(u) {
							comp = append(comp, u)
						}
					}
				}
			}
			lo = hi
		}
		best := 0
		for q := 1; q < a.P; q++ {
			if sizes[q] < sizes[best] {
				best = q
			}
		}
		for _, v := range comp {
			a.Part[v] = int32(best)
			assigned++
		}
		sizes[best] += len(comp)
		clusterFallbacks++
	}
	s.comp = comp

	e.clearPending()
	return assigned, clusterFallbacks, nil
}

// srcTask collects one seed-shard's labeled neighbors (the BFS rim).
type srcTask struct {
	e *Engine
	a *partition.Assignment
}

func (t *srcTask) Do(w int) {
	e := t.e
	s := &e.asg
	ws := &s.ws[w]
	ws.srcs = ws.srcs[:0]
	sh := s.shards[w]
	for _, v := range s.seeds[sh.Lo:sh.Hi] {
		for _, u := range e.csr.Row(v) {
			if t.a.Part[u] >= 0 && s.stamps.Claim(u) {
				ws.srcs = append(ws.srcs, u)
			}
		}
	}
}

// orphanTask expands one shard of an orphan component's frontier:
// unassigned neighbors are claimed into the worker's private list and
// merged in shard order. Only membership matters downstream (the whole
// component gets one partition), so no discoverer bookkeeping is needed.
type orphanTask struct {
	e        *Engine
	a        *partition.Assignment
	frontier []graph.Vertex
}

func (t *orphanTask) Do(w int) {
	e := t.e
	s := &e.asg
	ws := &s.ws[w]
	ws.srcs = ws.srcs[:0]
	sh := s.shards[w]
	for _, v := range t.frontier[sh.Lo:sh.Hi] {
		for _, u := range e.csr.Row(v) {
			if t.a.Part[u] < 0 && s.stamps.Claim(u) {
				ws.srcs = append(ws.srcs, u)
			}
		}
	}
}

// asgLevelTask expands one shard of the current frontier: unassigned
// neighbors are claimed (membership), then each claimed vertex computes
// its canonical discoverer deterministically — claim racing never
// reaches the result.
type asgLevelTask struct {
	e        *Engine
	a        *partition.Assignment
	frontier []graph.Vertex
}

func (t *asgLevelTask) Do(w int) {
	e := t.e
	s := &e.asg
	ws := &s.ws[w]
	ws.cands = ws.cands[:0]
	sh := s.shards[w]
	for _, v := range t.frontier[sh.Lo:sh.Hi] {
		for _, u := range e.csr.Row(v) {
			if t.a.Part[u] >= 0 || !s.stamps.Claim(u) {
				continue
			}
			// Canonical discoverer: the current-frontier neighbor with
			// the smallest frontier position. posStamps and posOf are
			// written only between regions, so the reads are race-free.
			minpos := int32(math.MaxInt32)
			var disc graph.Vertex
			for _, nb := range e.csr.Row(u) {
				if s.posStamps.Marked(nb) && s.posOf[nb] < minpos {
					minpos = s.posOf[nb]
					disc = nb
				}
			}
			var rowIdx uint32
			for j, x := range e.csr.Row(disc) {
				if x == u {
					rowIdx = uint32(j)
					break
				}
			}
			s.winner[u] = s.winner[disc]
			ws.cands = append(ws.cands, asgCand{key: uint64(uint32(minpos))<<32 | uint64(rowIdx), v: u})
		}
	}
}
