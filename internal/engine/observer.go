package engine

import "time"

// Phase names one phase of the pipeline. The values are stable:
// dashboards may persist them (new phases are only ever appended).
type Phase int8

// The four phases of the incremental graph partitioner, plus the two
// V-cycle phases that bracket them when Options.Multilevel is enabled.
const (
	PhaseAssign  Phase = iota // phase 1: nearest-partition assignment
	PhaseLayer                // phase 2: boundary layering
	PhaseBalance              // phase 3: the balance LP + moves
	PhaseRefine               // phase 4: LP cut refinement (IGPR)
	// PhaseCoarsen is the V-cycle's down-leg: hierarchy update (journal
	// repair or rebuild per level) plus the coarsest-graph solve.
	PhaseCoarsen
	// PhaseUncoarsen is the V-cycle's up-leg: per-level projection and
	// greedy refinement back to the fine graph.
	PhaseUncoarsen
)

func (p Phase) String() string {
	switch p {
	case PhaseAssign:
		return "assign"
	case PhaseLayer:
		return "layer"
	case PhaseBalance:
		return "balance"
	case PhaseRefine:
		return "refine"
	case PhaseCoarsen:
		return "coarsen"
	case PhaseUncoarsen:
		return "uncoarsen"
	}
	return "unknown"
}

// EventKind distinguishes observer events.
type EventKind int8

const (
	// EventStart opens a span: a whole phase, or one stage's slice of the
	// layer/balance phases.
	EventStart EventKind = iota
	// EventEnd closes the matching EventStart span and carries its
	// measurements (Elapsed, and Moved/Epsilon where applicable).
	EventEnd
	// EventRound reports one applied refinement round (Stage is the
	// 1-based round, Moved the vertices it moved).
	EventRound
)

func (k EventKind) String() string {
	switch k {
	case EventStart:
		return "start"
	case EventEnd:
		return "end"
	case EventRound:
		return "round"
	}
	return "unknown"
}

// Event is one stage-level observation streamed to Options.Observer
// during Repartition. Events arrive in pipeline order, on the calling
// goroutine, with every EventEnd following its EventStart:
//
//	assign start/end,
//	then if multilevel is enabled:
//	  coarsen start, per-level coarsen start/end pairs (Stage = 1-based
//	  level, emitted back-to-back after the level's work with its
//	  measured Elapsed), coarsen end,
//	  uncoarsen start, per-level pairs in uncoarsening order (Stage
//	  descending), uncoarsen end,
//	then per balancing stage s: layer start/end (Stage=s),
//	balance start/end (Stage=s, Epsilon, Moved),
//	then if refinement is enabled: refine start, refine rounds, refine end.
//
// The struct is passed by value and is free of engine-owned pointers, so
// observers may retain it. Spans stay paired on error paths too: an
// aborted phase (cancellation, infeasibility) still emits its EventEnd —
// carrying the elapsed time but possibly zero Moved/Epsilon — before
// Repartition returns the error.
type Event struct {
	Kind  EventKind
	Phase Phase
	// Stage is the 1-based balancing stage for layer/balance spans and the
	// 1-based round for refine EventRound; 0 for whole-phase spans.
	Stage int
	// Epsilon is the relaxation factor that produced a feasible LP
	// (balance EventEnd only).
	Epsilon float64
	// Moved counts vertices moved in the closed span (for the assign
	// phase: vertices newly assigned).
	Moved int
	// Elapsed is the wall-clock duration of the closed span (EventEnd
	// only).
	Elapsed time.Duration
}

// emit delivers ev to the configured observer, if any. Observers run
// synchronously on the repartitioning goroutine: a slow observer slows
// the pipeline, and panics propagate to the Repartition caller.
func (e *Engine) emit(ev Event) {
	if e.opt.Observer != nil {
		e.opt.Observer(ev)
	}
}
