package partition

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestNewAndValidate(t *testing.T) {
	g := graph.Grid(2, 3)
	a := New(g.Order(), 2)
	if err := a.Validate(g); err == nil {
		t.Fatal("all-unassigned should fail validation for live vertices")
	}
	for v := 0; v < g.Order(); v++ {
		a.Part[v] = int32(v % 2)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	a.Part[0] = 5
	if err := a.Validate(g); err == nil {
		t.Fatal("out-of-range partition should fail")
	}
}

func TestValidateDeadSlots(t *testing.T) {
	g := graph.Grid(2, 2)
	_ = g.RemoveVertex(3)
	a := New(g.Order(), 2)
	for v := 0; v < 3; v++ {
		a.Part[v] = 0
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	a.Part[3] = 1
	if err := a.Validate(g); err == nil {
		t.Fatal("assigned dead slot should fail")
	}
}

func TestWeightsAndSizes(t *testing.T) {
	g := graph.NewWithVertices(4)
	g.SetVertexWeight(0, 2)
	a := New(4, 2)
	a.Part = []int32{0, 0, 1, 1}
	w := a.Weights(g)
	if w[0] != 3 || w[1] != 2 {
		t.Fatalf("weights = %v, want [3 2]", w)
	}
	s := a.Sizes(g)
	if s[0] != 2 || s[1] != 2 {
		t.Fatalf("sizes = %v, want [2 2]", s)
	}
}

func TestCutGrid(t *testing.T) {
	// 2x4 grid split down the middle: columns 0-1 vs 2-3.
	g := graph.Grid(2, 4)
	a := New(g.Order(), 2)
	for r := 0; r < 2; r++ {
		for c := 0; c < 4; c++ {
			p := int32(0)
			if c >= 2 {
				p = 1
			}
			a.Part[r*4+c] = p
		}
	}
	st := Cut(g, a)
	if st.Total != 2 {
		t.Fatalf("total cut = %d, want 2", st.Total)
	}
	if st.PerPart[0] != 2 || st.PerPart[1] != 2 {
		t.Fatalf("per-part = %v, want [2 2]", st.PerPart)
	}
	if st.Max != 2 || st.Min != 2 {
		t.Fatalf("max/min = %g/%g, want 2/2", st.Max, st.Min)
	}
}

func TestCutIgnoresUnassigned(t *testing.T) {
	g := graph.Path(3)
	a := New(3, 2)
	a.Part = []int32{0, Unassigned, 1}
	st := Cut(g, a)
	if st.Total != 0 {
		t.Fatalf("cut = %d, want 0 (edges to unassigned don't count)", st.Total)
	}
}

func TestCutWeighted(t *testing.T) {
	g := graph.NewWithVertices(2)
	_ = g.AddEdge(0, 1, 2.5)
	a := New(2, 2)
	a.Part = []int32{0, 1}
	st := Cut(g, a)
	if st.TotalWeight != 2.5 || st.Total != 1 {
		t.Fatalf("weight=%g total=%d, want 2.5/1", st.TotalWeight, st.Total)
	}
}

func TestImbalance(t *testing.T) {
	g := graph.NewWithVertices(4)
	a := New(4, 2)
	a.Part = []int32{0, 0, 0, 1}
	if got := Imbalance(g, a); got != 1.5 {
		t.Fatalf("imbalance = %g, want 1.5", got)
	}
	b := New(4, 2)
	b.Part = []int32{0, 0, 1, 1}
	if got := Imbalance(g, b); got != 1.0 {
		t.Fatalf("imbalance = %g, want 1.0", got)
	}
}

// TestImbalanceDegenerate guards the mean-weight division: empty graphs,
// zero-weight graphs and partitionless assignments must report the
// trivially balanced 1.0, never NaN or ±Inf.
func TestImbalanceDegenerate(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		a    *Assignment
	}{
		{"empty graph", graph.New(0), New(0, 4)},
		{"no partitions", graph.NewWithVertices(3), &Assignment{Part: []int32{-1, -1, -1}, P: 0}},
		{"all unassigned", graph.NewWithVertices(3), New(3, 2)},
	}
	zw := graph.NewWithVertices(3)
	for v := 0; v < 3; v++ {
		zw.SetVertexWeight(graph.Vertex(v), 0)
	}
	za := &Assignment{Part: []int32{0, 0, 1}, P: 2}
	cases = append(cases, struct {
		name string
		g    *graph.Graph
		a    *Assignment
	}{"zero-weight vertices", zw, za})

	for _, tc := range cases {
		got := Imbalance(tc.g, tc.a)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("%s: imbalance = %g, want finite 1.0", tc.name, got)
		}
		if got != 1.0 {
			t.Fatalf("%s: imbalance = %g, want 1.0", tc.name, got)
		}
	}
}

func TestTargets(t *testing.T) {
	got := Targets(10, 3)
	want := []int{4, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("targets = %v, want %v", got, want)
		}
	}
	sum := 0
	for _, x := range Targets(1071, 32) {
		sum += x
	}
	if sum != 1071 {
		t.Fatalf("targets don't sum to n: %d", sum)
	}
}

func TestBalanced(t *testing.T) {
	if !Balanced([]int{4, 3, 3}) {
		t.Fatal("4,3,3 is balanced")
	}
	if Balanced([]int{5, 3, 3}) {
		t.Fatal("5,3,3 is not balanced")
	}
	if !Balanced(nil) {
		t.Fatal("empty is balanced")
	}
}

func TestGrowAndOf(t *testing.T) {
	a := New(2, 2)
	a.Part[0] = 1
	a.Grow(5)
	if len(a.Part) != 5 {
		t.Fatalf("len = %d, want 5", len(a.Part))
	}
	if a.Of(0) != 1 || a.Of(3) != Unassigned || a.Of(99) != Unassigned {
		t.Fatal("Of() wrong")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(3, 2)
	b := a.Clone()
	b.Part[0] = 1
	if a.Part[0] != Unassigned {
		t.Fatal("clone must not alias")
	}
}

func TestMetricsTolerateShortAssignment(t *testing.T) {
	// A graph that outgrew its assignment: extra vertices count as
	// Unassigned in every metric instead of panicking.
	g := graph.Path(3)
	a := New(3, 2)
	a.Part = []int32{0, 0, 1}
	g.AddVertex(1) // vertex 3, beyond a's coverage
	_ = g.AddEdge(3, 2, 1)
	if got := a.Sizes(g); got[0] != 2 || got[1] != 1 {
		t.Fatalf("sizes = %v", got)
	}
	if got := Cut(g, a); got.Total != 1 {
		t.Fatalf("cut = %d, want 1 (edge to uncovered vertex ignored)", got.Total)
	}
	if got := Imbalance(g, a); got != 2.0/1.5 {
		t.Fatalf("imbalance = %g", got)
	}
}

func TestAssignmentIORoundTrip(t *testing.T) {
	a := New(5, 3)
	a.Part = []int32{0, 2, Unassigned, 1, 0}
	var buf bytes.Buffer
	if err := WriteAssignment(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadAssignment(&buf, 0, 0) // header supplies dimensions
	if err != nil {
		t.Fatal(err)
	}
	if b.P != 3 || len(b.Part) != 5 {
		t.Fatalf("dims %d/%d", b.P, len(b.Part))
	}
	for i := range a.Part {
		if a.Part[i] != b.Part[i] {
			t.Fatalf("slot %d: %d != %d", i, a.Part[i], b.Part[i])
		}
	}
}

func TestAssignmentIOHeaderless(t *testing.T) {
	in := "0 1\n2 0\n"
	a, err := ReadAssignment(strings.NewReader(in), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Part[0] != 1 || a.Part[1] != Unassigned || a.Part[2] != 0 {
		t.Fatalf("parts = %v", a.Part)
	}
}

func TestAssignmentIOErrors(t *testing.T) {
	if _, err := ReadAssignment(strings.NewReader("9 0\n"), 3, 2); err == nil {
		t.Fatal("out-of-range vertex must error")
	}
	if _, err := ReadAssignment(strings.NewReader("bogus\n"), 3, 2); err == nil {
		t.Fatal("garbage must error")
	}
	if _, err := ReadAssignment(strings.NewReader("0 1\n"), 0, 0); err == nil {
		t.Fatal("headerless without dimensions must error")
	}
}
