// Package partition defines the partition-assignment representation and
// the quality metrics the paper reports: cutset totals, per-partition
// boundary costs (the table's Max/Min columns), partition weights, and
// load imbalance.
package partition

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Unassigned marks vertices with no partition (dead slots, or new vertices
// before the assign phase).
const Unassigned int32 = -1

// Assignment maps each vertex slot to a partition in [0, P), or
// Unassigned. It deliberately stays a thin value type: algorithms pass and
// copy it freely.
type Assignment struct {
	Part []int32
	P    int
}

// New returns an all-Unassigned assignment for n vertex slots and p parts.
func New(n, p int) *Assignment {
	a := &Assignment{Part: make([]int32, n), P: p}
	for i := range a.Part {
		a.Part[i] = Unassigned
	}
	return a
}

// Clone deep-copies the assignment.
func (a *Assignment) Clone() *Assignment {
	return &Assignment{Part: append([]int32(nil), a.Part...), P: a.P}
}

// Grow extends the assignment with Unassigned slots to cover n vertices.
func (a *Assignment) Grow(n int) {
	for len(a.Part) < n {
		a.Part = append(a.Part, Unassigned)
	}
}

// Of returns the partition of v, or Unassigned when out of range.
func (a *Assignment) Of(v graph.Vertex) int32 {
	if int(v) >= len(a.Part) {
		return Unassigned
	}
	return a.Part[v]
}

// Validate checks that every live vertex of g has a partition in [0, P)
// and that dead slots are Unassigned.
func (a *Assignment) Validate(g *graph.Graph) error {
	if len(a.Part) < g.Order() {
		return fmt.Errorf("partition: assignment covers %d slots, graph has %d", len(a.Part), g.Order())
	}
	for v := 0; v < g.Order(); v++ {
		p := a.Part[v]
		if g.Alive(graph.Vertex(v)) {
			if p < 0 || int(p) >= a.P {
				return fmt.Errorf("partition: live vertex %d has partition %d (P=%d)", v, p, a.P)
			}
		} else if p != Unassigned {
			return fmt.Errorf("partition: dead vertex %d has partition %d", v, p)
		}
	}
	return nil
}

// ValidateCSR checks that the assignment covers a CSR snapshot: live
// slots carry a partition in [0, P), dead slots are Unassigned. It is the
// snapshot-side counterpart of Validate, used by the CSR kernels.
func (a *Assignment) ValidateCSR(c *graph.CSR) error {
	n := c.Order()
	if len(a.Part) < n {
		return fmt.Errorf("partition: assignment covers %d slots, snapshot has %d", len(a.Part), n)
	}
	for v := 0; v < n; v++ {
		p := a.Part[v]
		if c.Live[v] {
			if p < 0 || int(p) >= a.P {
				return fmt.Errorf("partition: live vertex %d has partition %d (P=%d)", v, p, a.P)
			}
		} else if p != Unassigned {
			return fmt.Errorf("partition: dead vertex %d has partition %d", v, p)
		}
	}
	return nil
}

// Weights returns the total vertex weight of each partition. Vertices
// beyond the assignment's coverage count as Unassigned.
func (a *Assignment) Weights(g *graph.Graph) []float64 {
	w := make([]float64, a.P)
	for v := 0; v < g.Order(); v++ {
		if !g.Alive(graph.Vertex(v)) {
			continue
		}
		if p := a.Of(graph.Vertex(v)); p >= 0 {
			w[p] += g.VertexWeight(graph.Vertex(v))
		}
	}
	return w
}

// Sizes returns the live-vertex count of each partition. Vertices beyond
// the assignment's coverage count as Unassigned.
func (a *Assignment) Sizes(g *graph.Graph) []int {
	return a.SizesInto(make([]int, a.P), g)
}

// SizesInto fills s (which must have length a.P) with the live-vertex
// count of each partition and returns it, allocating nothing. Repeated
// callers (the balance stage loop) pass a reused buffer.
func (a *Assignment) SizesInto(s []int, g *graph.Graph) []int {
	for i := range s {
		s[i] = 0
	}
	for v := 0; v < g.Order(); v++ {
		if !g.Alive(graph.Vertex(v)) {
			continue
		}
		if p := a.Of(graph.Vertex(v)); p >= 0 {
			s[p]++
		}
	}
	return s
}

// CutStats aggregates the paper's cutset columns.
type CutStats struct {
	// Total is the number of cut edges (each counted once) — the table's
	// "Total" column.
	Total int
	// TotalWeight is the summed weight of cut edges.
	TotalWeight float64
	// PerPart[q] is C(q): the weight of edges leaving partition q. The
	// table's Max and Min columns are the extremes of this vector.
	PerPart []float64
	// Max and Min are the extremes of PerPart over non-empty partitions.
	Max, Min float64
}

// Cut computes cutset statistics for assignment a on graph g. Vertices
// that are Unassigned (including any beyond the assignment's coverage)
// contribute no cut edges.
func Cut(g *graph.Graph, a *Assignment) CutStats {
	st := CutStats{PerPart: make([]float64, a.P)}
	for vi := 0; vi < g.Order(); vi++ {
		v := graph.Vertex(vi)
		if !g.Alive(v) {
			continue
		}
		pv := a.Of(v)
		if pv < 0 {
			continue
		}
		ws := g.EdgeWeights(v)
		for i, u := range g.Neighbors(v) {
			pu := a.Of(u)
			if pu < 0 || pu == pv {
				continue
			}
			st.PerPart[pv] += ws[i]
			if v < u {
				st.Total++
				st.TotalWeight += ws[i]
			}
		}
	}
	st.Max = math.Inf(-1)
	st.Min = math.Inf(1)
	empty := true
	sizes := a.Sizes(g)
	for q := 0; q < a.P; q++ {
		if sizes[q] == 0 {
			continue
		}
		empty = false
		if st.PerPart[q] > st.Max {
			st.Max = st.PerPart[q]
		}
		if st.PerPart[q] < st.Min {
			st.Min = st.PerPart[q]
		}
	}
	if empty {
		st.Max, st.Min = 0, 0
	}
	return st
}

// CutSeededInto fills dst with cutset statistics computed from a
// boundary seed set over a CSR snapshot, reusing perPart as the
// PerPart arena (grown as needed and returned). boundary must be sorted
// ascending, duplicate-free, and contain every live vertex with at
// least one neighbor in a different partition; sizes must hold each
// partition's live assigned-vertex count (as SizesInto reports).
//
// The result — floats included — is bit-identical to Cut(g, a) for the
// graph the snapshot reflects: vertices outside the boundary contribute
// no terms to any accumulator, so iterating only the boundary in
// ascending order performs exactly the additions Cut performs, in the
// same order. The cost is O(Σ deg(boundary) + P) instead of O(n + m),
// which is what makes the engine's incremental cut maintenance
// edit-proportional; Cut itself remains the brute-force oracle.
func CutSeededInto(dst *CutStats, perPart []float64, c *graph.CSR, a *Assignment, boundary []graph.Vertex, sizes []int) []float64 {
	if cap(perPart) < a.P {
		perPart = make([]float64, a.P)
	}
	perPart = perPart[:a.P]
	for i := range perPart {
		perPart[i] = 0
	}
	st := CutStats{PerPart: perPart}
	for _, v := range boundary {
		pv := a.Of(v)
		if pv < 0 {
			continue
		}
		ws := c.RowWeights(v)
		for i, u := range c.Row(v) {
			pu := a.Of(u)
			if pu < 0 || pu == pv {
				continue
			}
			st.PerPart[pv] += ws[i]
			if v < u {
				st.Total++
				st.TotalWeight += ws[i]
			}
		}
	}
	st.Max = math.Inf(-1)
	st.Min = math.Inf(1)
	empty := true
	for q := 0; q < a.P; q++ {
		if sizes[q] == 0 {
			continue
		}
		empty = false
		if st.PerPart[q] > st.Max {
			st.Max = st.PerPart[q]
		}
		if st.PerPart[q] < st.Min {
			st.Min = st.PerPart[q]
		}
	}
	if empty {
		st.Max, st.Min = 0, 0
	}
	*dst = st
	return perPart
}

// CutSeededWeight returns only the total cut weight from a sorted
// boundary seed set — the quantity the refinement driver polls every
// round. Bit-identical to Cut(g, a).TotalWeight under the CutSeededInto
// preconditions, at O(Σ deg(boundary)) cost.
func CutSeededWeight(c *graph.CSR, a *Assignment, boundary []graph.Vertex) float64 {
	var total float64
	for _, v := range boundary {
		pv := a.Of(v)
		if pv < 0 {
			continue
		}
		ws := c.RowWeights(v)
		for i, u := range c.Row(v) {
			if v < u {
				if pu := a.Of(u); pu >= 0 && pu != pv {
					total += ws[i]
				}
			}
		}
	}
	return total
}

// Imbalance returns max(weight)/mean(weight) over partitions; 1.0 is
// perfectly balanced. An assignment with an empty partition still gets a
// finite value (its max is over the others). Degenerate inputs — an
// empty or zero-total-weight graph, or an assignment with no partitions —
// would divide by a zero mean; they report 1.0 (trivially balanced)
// instead of NaN so monitoring ratios stay finite.
func Imbalance(g *graph.Graph, a *Assignment) float64 {
	if a.P <= 0 {
		return 1
	}
	w := a.Weights(g)
	var sum, max float64
	for _, x := range w {
		sum += x
		if x > max {
			max = x
		}
	}
	mean := sum / float64(a.P)
	if !(mean > 0) {
		return 1
	}
	return max / mean
}

// Targets distributes total integer load n over p partitions as evenly as
// possible: the first n%p partitions get ⌈n/p⌉, the rest ⌊n/p⌋. These are
// the balance-LP right-hand sides (the paper's per-partition average μ,
// made integral).
func Targets(n, p int) []int {
	return TargetsInto(make([]int, p), n, p)
}

// TargetsInto is Targets into a reused buffer of capacity ≥ p, for
// allocation-free callers; it returns the filled buffer.
func TargetsInto(t []int, n, p int) []int {
	t = t[:p]
	q, r := n/p, n%p
	for i := range t {
		t[i] = q
		if i < r {
			t[i]++
		}
	}
	return t
}

// Balanced reports whether partition sizes match some Targets(n,p)
// distribution, i.e. max−min ≤ 1 over all partitions.
func Balanced(sizes []int) bool {
	if len(sizes) == 0 {
		return true
	}
	mn, mx := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < mn {
			mn = s
		}
		if s > mx {
			mx = s
		}
	}
	return mx-mn <= 1
}
