package partition

import (
	"bufio"
	"fmt"
	"io"
)

// WriteAssignment encodes a as "vertex partition" lines (unassigned slots
// are omitted), preceded by a header recording the slot count and P.
func WriteAssignment(w io.Writer, a *Assignment) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "igp-assignment %d %d\n", len(a.Part), a.P)
	for v, q := range a.Part {
		if q >= 0 {
			fmt.Fprintf(bw, "%d %d\n", v, q)
		}
	}
	return bw.Flush()
}

// ReadAssignment decodes an assignment written by WriteAssignment. Files
// without the header are accepted for interoperability: pass the slot
// count and partition count explicitly via defaults (order, p); the
// header, when present, overrides them.
func ReadAssignment(r io.Reader, order, p int) (*Assignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var a *Assignment
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if line == 1 {
			var ho, hp int
			if n, _ := fmt.Sscanf(text, "igp-assignment %d %d", &ho, &hp); n == 2 {
				order, p = ho, hp
				continue
			}
		}
		if a == nil {
			if order <= 0 || p <= 0 {
				return nil, fmt.Errorf("partition: read assignment: no header and no explicit dimensions")
			}
			a = New(order, p)
		}
		var v, q int
		if _, err := fmt.Sscanf(text, "%d %d", &v, &q); err != nil {
			return nil, fmt.Errorf("partition: read assignment line %d: %w", line, err)
		}
		if v < 0 || v >= order || q < 0 || q >= p {
			return nil, fmt.Errorf("partition: read assignment line %d: vertex %d / partition %d out of range (order %d, P %d)", line, v, q, order, p)
		}
		a.Part[v] = int32(q)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if a == nil {
		if order <= 0 || p <= 0 {
			return nil, fmt.Errorf("partition: read assignment: empty input and no explicit dimensions")
		}
		a = New(order, p)
	}
	return a, nil
}
