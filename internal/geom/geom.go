// Package geom provides the small set of 2-D primitives the mesh
// generator needs: points, orientation and in-circumcircle predicates.
// The predicates are plain float64 determinants — adequate because the
// generators jitter their input points away from degenerate (collinear /
// cocircular) configurations.
package geom

import "math"

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Sub returns p − q as a vector-point.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Orient returns twice the signed area of triangle abc: positive if abc is
// counterclockwise, negative if clockwise, ~0 if collinear.
func Orient(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// InCircumcircle reports whether p lies strictly inside the circumcircle
// of the counterclockwise triangle abc.
func InCircumcircle(a, b, c, p Point) bool {
	ax, ay := a.X-p.X, a.Y-p.Y
	bx, by := b.X-p.X, b.Y-p.Y
	cx, cy := c.X-p.X, c.Y-p.Y
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	return det > 0
}

// Centroid returns the centroid of triangle abc.
func Centroid(a, b, c Point) Point {
	return Point{(a.X + b.X + c.X) / 3, (a.Y + b.Y + c.Y) / 3}
}

// Circumradius returns the circumcircle radius of triangle abc (infinite
// for degenerate triangles).
func Circumradius(a, b, c Point) float64 {
	la := b.Dist(c)
	lb := a.Dist(c)
	lc := a.Dist(b)
	area := math.Abs(Orient(a, b, c)) / 2
	if area == 0 {
		return math.Inf(1)
	}
	return la * lb * lc / (4 * area)
}
