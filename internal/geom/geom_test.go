package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOrient(t *testing.T) {
	a, b := Point{0, 0}, Point{1, 0}
	if Orient(a, b, Point{0, 1}) <= 0 {
		t.Fatal("counterclockwise should be positive")
	}
	if Orient(a, b, Point{0, -1}) >= 0 {
		t.Fatal("clockwise should be negative")
	}
	if Orient(a, b, Point{2, 0}) != 0 {
		t.Fatal("collinear should be zero")
	}
}

func TestInCircumcircle(t *testing.T) {
	// Unit circle through (1,0), (0,1), (-1,0) — counterclockwise.
	a, b, c := Point{1, 0}, Point{0, 1}, Point{-1, 0}
	if !InCircumcircle(a, b, c, Point{0, 0}) {
		t.Fatal("origin is inside")
	}
	if InCircumcircle(a, b, c, Point{2, 2}) {
		t.Fatal("(2,2) is outside")
	}
	if InCircumcircle(a, b, c, Point{0, -1}) {
		t.Fatal("(0,-1) is on the circle, not strictly inside")
	}
}

func TestCircumradius(t *testing.T) {
	a, b, c := Point{1, 0}, Point{0, 1}, Point{-1, 0}
	if r := Circumradius(a, b, c); math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %g, want 1", r)
	}
	if r := Circumradius(a, Point{2, 0}, Point{3, 0}); !math.IsInf(r, 1) {
		t.Fatalf("degenerate triangle should give +inf, got %g", r)
	}
}

func TestCentroidAndDist(t *testing.T) {
	c := Centroid(Point{0, 0}, Point{3, 0}, Point{0, 3})
	if c.X != 1 || c.Y != 1 {
		t.Fatalf("centroid = %v, want (1,1)", c)
	}
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Fatalf("dist = %g, want 5", d)
	}
}

func TestPropertyOrientAntisymmetric(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Clamp to a sane range to avoid inf/NaN extremes.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		return Orient(a, b, c) == -Orient(b, a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
