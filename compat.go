package igp

import "context"

// This file keeps thin, deprecated wrappers for the pre-context,
// struct-options API so existing callers migrate on their own schedule.
// Each wrapper delegates to the primary context-aware surface with
// context.Background() and a [WithOptions] bridge.

// RepartitionWithOptions is the legacy one-shot entry point.
//
// Deprecated: Use [Repartition] with a context and functional options.
func RepartitionWithOptions(g *Graph, a *Assignment, opt Options) (*Stats, error) {
	return Repartition(context.Background(), g, a, WithOptions(opt))
}

// RepartitionInBatches reveals the new vertices in the given number of
// groups and repartitions after each; batches = 1 is identical to a
// single pass.
//
// Deprecated: Use [Repartition] with [WithBatches].
func RepartitionInBatches(g *Graph, a *Assignment, opt Options, batches int) (*Stats, error) {
	return Repartition(context.Background(), g, a, WithOptions(opt), WithBatches(batches))
}

// NewEngineWithOptions builds an engine from the legacy struct options.
//
// Deprecated: Use [NewEngine] with functional options.
func NewEngineWithOptions(g *Graph, opt Options) (*Engine, error) {
	return NewEngine(g, WithOptions(opt))
}
