package igp

import (
	"repro/internal/cancel"
	"repro/internal/lp"
)

// Solver is the pluggable simplex seam: anything that can optimize an
// [LPProblem] can drive the balance and refinement phases. Implementations
// must honor the context — long pivot loops are expected to poll it every
// few hundred iterations and abort with an error matching [ErrCanceled]
// (wrap the cause from context.Cause) once it is done.
//
// Register an implementation with [RegisterSolver] and select it with
// [WithSolver]; the built-ins ("dense", "bounded", "revised", the
// warm-started "dual-warm" and the approximate "mwu") register
// themselves at init.
type Solver = lp.Solver

// LPProblem is the linear program handed to a Solver: minimize/maximize
// Obj·x subject to the sparse constraints in Cons, 0 ≤ x ≤ Upper.
type LPProblem = lp.Problem

// LPSolution is a Solver's result: Status, the variable vector X (valid
// when Status == LPOptimal), the objective value, and the pivot count
// (reported as Stats.LPIterations).
type LPSolution = lp.Solution

// LPConstraint is one sparse constraint row of an LPProblem.
type LPConstraint = lp.Constraint

// LPTerm is one coefficient of a sparse constraint row.
type LPTerm = lp.Term

// LPStatus reports the outcome of a solve.
type LPStatus = lp.Status

// The LPStatus values a Solver may report.
const (
	LPOptimal    = lp.Optimal
	LPInfeasible = lp.Infeasible
	LPUnbounded  = lp.Unbounded
	LPIterLimit  = lp.IterLimit
)

// RegisterSolver adds a named Solver implementation to the registry
// consulted by [WithSolver] (and the cmd/ binaries' -solver flags).
// Empty and duplicate names are rejected, so a custom solver cannot
// silently shadow a built-in. Registration is typically done from an
// init function; it is safe for concurrent use.
func RegisterSolver(name string, s Solver) error { return lp.Register(name, s) }

// SolverNames returns the names of all registered solvers in sorted
// order: the built-ins "bounded" (the default), "dense", "revised",
// "dual-warm" and "mwu", plus anything added via RegisterSolver.
func SolverNames() []string { return lp.Names() }

// ErrCanceled is the sentinel every context-driven abort matches:
// errors.Is(err, ErrCanceled) is true exactly when a Repartition (or a
// solve inside one) stopped because its context was done. The returned
// error is a [*CanceledError] wrapping context.Cause, so
// errors.Is(err, context.DeadlineExceeded) etc. also work.
var ErrCanceled = cancel.ErrCanceled

// CanceledError is the typed error returned for context-driven aborts:
// Op names the pipeline stage that observed the done context, Cause
// carries context.Cause at that moment.
type CanceledError = cancel.Error
