// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// (or family) exists per table/figure plus the ablations DESIGN.md lists:
//
//	BenchmarkFig11_*       — Figure 11 rows (mesh A): SB vs IGP vs IGPR
//	BenchmarkFig14_*       — Figure 14 rows (mesh B, -short skips)
//	BenchmarkSpeedup_*     — §4 parallel-speedup claim (simulated CM-5)
//	BenchmarkLPSize        — §4 LP-size independence claim
//	BenchmarkSimplex_*     — ablation A1: dense vs bounded vs revised
//	BenchmarkRefine_*      — ablation A2: LP refinement vs greedy KL/FM
//	BenchmarkMultilevel    — ablation A3: multilevel (coarsened) IGP
//	BenchmarkPhase_*       — per-phase costs (assign/layer/balance)
//	BenchmarkMeshGen       — workload generation (Figures 10/12/13)
package igp

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/balance"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/layering"
	"repro/internal/lp"
	"repro/internal/mesh"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/refine"
	"repro/internal/spectral"
)

// fixtures are built once and shared read-only across benchmarks.
type fixture struct {
	seq  *mesh.Sequence
	base *partition.Assignment
}

var (
	fixA, fixB       *fixture
	onceA, onceB     sync.Once
	fixAErr, fixBErr error
)

func meshA(b *testing.B) *fixture {
	b.Helper()
	onceA.Do(func() {
		seq, err := mesh.PaperSequenceA(1994)
		if err != nil {
			fixAErr = err
			return
		}
		part, err := spectral.RSB(seq.Base, 32, spectral.Options{Seed: 1994})
		if err != nil {
			fixAErr = err
			return
		}
		fixA = &fixture{seq: seq, base: &partition.Assignment{Part: part, P: 32}}
	})
	if fixAErr != nil {
		b.Fatal(fixAErr)
	}
	return fixA
}

func meshB(b *testing.B) *fixture {
	b.Helper()
	if testing.Short() {
		b.Skip("mesh B (10k vertices) skipped in -short mode")
	}
	onceB.Do(func() {
		seq, err := mesh.PaperSequenceB(1994)
		if err != nil {
			fixBErr = err
			return
		}
		part, err := spectral.RSB(seq.Base, 32, spectral.Options{Seed: 1994})
		if err != nil {
			fixBErr = err
			return
		}
		fixB = &fixture{seq: seq, base: &partition.Assignment{Part: part, P: 32}}
	})
	if fixBErr != nil {
		b.Fatal(fixBErr)
	}
	return fixB
}

// --- Figure 11 (mesh A) ----------------------------------------------------

func BenchmarkFig11_SB(b *testing.B) {
	f := meshA(b)
	g := f.seq.Steps[0].Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectral.RSB(g, 32, spectral.Options{Seed: 1994}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchIGP(b *testing.B, g *graph.Graph, base *partition.Assignment, withRefine bool) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := base.Clone()
		if _, err := core.Repartition(context.Background(), g, a, core.Options{Refine: withRefine}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11_IGP(b *testing.B) {
	f := meshA(b)
	benchIGP(b, f.seq.Steps[0].Graph, f.base, false)
}

func BenchmarkFig11_IGPR(b *testing.B) {
	f := meshA(b)
	benchIGP(b, f.seq.Steps[0].Graph, f.base, true)
}

// --- Figure 14 (mesh B) ----------------------------------------------------

func BenchmarkFig14_SB(b *testing.B) {
	f := meshB(b)
	g := f.seq.Steps[0].Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectral.RSB(g, 32, spectral.Options{Seed: 1994}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14_IGP(b *testing.B) {
	f := meshB(b)
	benchIGP(b, f.seq.Steps[0].Graph, f.base, false)
}

func BenchmarkFig14_IGPR(b *testing.B) {
	f := meshB(b)
	benchIGP(b, f.seq.Steps[0].Graph, f.base, true)
}

func BenchmarkFig14_IGP_BigRefinement(b *testing.B) {
	f := meshB(b)
	benchIGP(b, f.seq.Steps[3].Graph, f.base, false)
}

// --- §4 speedup claim (simulated CM-5) -------------------------------------

func benchSpeedup(b *testing.B, ranks int) {
	f := meshA(b)
	g := f.seq.Steps[0].Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := comm.NewWorld(ranks, comm.CM5())
		if err != nil {
			b.Fatal(err)
		}
		a := f.base.Clone()
		res, err := parallel.Repartition(context.Background(), w, g, a, parallel.Options{Refine: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SimTime.Seconds(), "simsec/op")
	}
}

func BenchmarkSpeedup_1rank(b *testing.B)  { benchSpeedup(b, 1) }
func BenchmarkSpeedup_8ranks(b *testing.B) { benchSpeedup(b, 8) }
func BenchmarkSpeedup_32ranks(b *testing.B) {
	benchSpeedup(b, 32)
}

// --- §4 LP-size independence ------------------------------------------------

func BenchmarkLPSize(b *testing.B) {
	f := meshA(b)
	g := f.seq.Steps[0].Graph
	var vars, cons int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := f.base.Clone()
		st, err := core.Repartition(context.Background(), g, a, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		vars, cons = st.MaxLPSize()
	}
	b.ReportMetric(float64(vars), "lpvars")
	b.ReportMetric(float64(cons), "lpcons")
}

// --- Ablation A1: simplex variants ------------------------------------------

// balanceLP builds a representative balance LP from mesh A's first step.
func balanceLP(b *testing.B) *lp.Problem {
	b.Helper()
	f := meshA(b)
	g := f.seq.Steps[0].Graph
	a := f.base.Clone()
	if _, _, err := core.Assign(g, a); err != nil {
		b.Fatal(err)
	}
	lay, err := layering.Layer(g, a)
	if err != nil {
		b.Fatal(err)
	}
	targets := partition.Targets(g.NumVertices(), 32)
	m, err := balance.Formulate(lay.Delta, a.Sizes(g), targets, 1)
	if err != nil {
		b.Fatal(err)
	}
	return m.Prob
}

func benchSimplex(b *testing.B, s lp.Solver) {
	prob := balanceLP(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := s.Solve(context.Background(), prob)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

func BenchmarkSimplex_Dense(b *testing.B)   { benchSimplex(b, lp.Dense{}) }
func BenchmarkSimplex_Bounded(b *testing.B) { benchSimplex(b, lp.Bounded{}) }
func BenchmarkSimplex_Revised(b *testing.B) { benchSimplex(b, lp.Revised{}) }

// --- Ablation A2/A4: refinement variants -------------------------------------

// unrefined returns a balanced-but-unrefined assignment of mesh A step 1.
func unrefined(b *testing.B) (*graph.Graph, *partition.Assignment) {
	b.Helper()
	f := meshA(b)
	g := f.seq.Steps[0].Graph
	a := f.base.Clone()
	if _, err := core.Repartition(context.Background(), g, a, core.Options{}); err != nil {
		b.Fatal(err)
	}
	return g, a
}

func BenchmarkRefine_LP(b *testing.B) {
	g, a0 := unrefined(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := a0.Clone()
		st, err := refine.Refine(g, a, refine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.CutAfter, "cut")
	}
}

func BenchmarkRefine_Greedy(b *testing.B) {
	g, a0 := unrefined(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := a0.Clone()
		refine.Greedy(g, a, 0, 1)
		b.ReportMetric(partition.Cut(g, a).TotalWeight, "cut")
	}
}

// --- Ablation A3: multilevel IGP ---------------------------------------------

func BenchmarkMultilevel(b *testing.B) {
	f := meshA(b)
	g := f.seq.Steps[0].Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := f.base.Clone()
		st, err := core.MultilevelRepartition(context.Background(), g, a, core.MultilevelOptions{})
		if err != nil {
			b.Fatal(err)
		}
		_ = st
		b.ReportMetric(partition.Cut(g, a).TotalWeight, "cut")
	}
}

// --- Per-phase costs ----------------------------------------------------------

func BenchmarkPhase_Assign(b *testing.B) {
	f := meshA(b)
	g := f.seq.Steps[0].Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := f.base.Clone()
		if _, _, err := core.Assign(g, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhase_Layer measures the steady-state layering cost: a warm
// engine re-layers an unchanged graph from its tracked boundary, the
// situation every balancing stage after the first is in. Compare with
// BenchmarkPhase_LayerOneShot (the seed implementation's behavior) for
// the allocation and time win.
func BenchmarkPhase_Layer(b *testing.B) {
	f := meshA(b)
	g := f.seq.Steps[0].Graph
	a := f.base.Clone()
	if _, _, err := core.Assign(g, a); err != nil {
		b.Fatal(err)
	}
	eng := engine.New(g, engine.Options{})
	if _, err := eng.Layer(context.Background(), a); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Layer(context.Background(), a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhase_LayerOneShot is the one-shot full-scan layering: fresh
// snapshot, fresh result arrays, every vertex and arc visited for level 0.
func BenchmarkPhase_LayerOneShot(b *testing.B) {
	f := meshA(b)
	g := f.seq.Steps[0].Graph
	a := f.base.Clone()
	if _, _, err := core.Assign(g, a); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layering.Layer(g, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhase_LayerSmallEdit measures the incremental resync path: one
// edge flip per iteration, then a boundary-seeded re-layer.
func BenchmarkPhase_LayerSmallEdit(b *testing.B) {
	f := meshA(b)
	g := f.seq.Steps[0].Graph.Clone()
	a := f.base.Clone()
	if _, _, err := core.Assign(g, a); err != nil {
		b.Fatal(err)
	}
	eng := engine.New(g, engine.Options{})
	if _, err := eng.Layer(context.Background(), a); err != nil {
		b.Fatal(err)
	}
	u, v := graph.Vertex(0), graph.Vertex(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.HasEdge(u, v) {
			_ = g.RemoveEdge(u, v)
		} else {
			_ = g.AddEdge(u, v, 1)
		}
		if _, err := eng.Layer(context.Background(), a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhase_Gains measures the steady-state refinement gain scan
// (boundary-seeded, warm engine); BenchmarkPhase_GainsOneShot is the full
// scan with fresh pools.
func BenchmarkPhase_Gains(b *testing.B) {
	g, a := unrefined(b)
	eng := engine.New(g, engine.Options{})
	if _, err := eng.Gains(a, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Gains(a, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhase_GainsOneShot(b *testing.B) {
	g, a := unrefined(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := refine.Gains(g, a, false); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Sharded multi-core kernels ------------------------------------------------
//
// BenchmarkPhase_LayerPar / BenchmarkPhase_GainsPar measure the
// steady-state sharded kernels at several worker counts on the mesh-A
// workload (procs=1 is the exact sequential path, the baseline for the
// wall-clock speedup the BENCH trajectory records). The *ParB variants
// run the 10k-vertex mesh B, where per-region fork-join overhead
// amortizes over ~10× the vertex work. Note that the speedup rows are
// only meaningful on a multi-core host: on a single-CPU machine the
// workers time-slice one core and procs>1 can only add overhead.

var benchProcs = []int{1, 2, 4, 8}

func benchEngineLayerProcs(b *testing.B, g *graph.Graph, base *partition.Assignment, procs int) {
	b.Helper()
	a := base.Clone()
	if _, _, err := core.Assign(g, a); err != nil {
		b.Fatal(err)
	}
	eng := engine.New(g, engine.Options{Parallelism: procs})
	if _, err := eng.Layer(context.Background(), a); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Layer(context.Background(), a); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEngineGainsProcs(b *testing.B, g *graph.Graph, a *partition.Assignment, procs int) {
	b.Helper()
	eng := engine.New(g, engine.Options{Parallelism: procs})
	if _, err := eng.Gains(a, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Gains(a, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhase_LayerPar(b *testing.B) {
	f := meshA(b)
	for _, procs := range benchProcs {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			benchEngineLayerProcs(b, f.seq.Steps[0].Graph, f.base, procs)
		})
	}
}

func BenchmarkPhase_GainsPar(b *testing.B) {
	g, a := unrefined(b)
	for _, procs := range benchProcs {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			benchEngineGainsProcs(b, g, a, procs)
		})
	}
}

func BenchmarkPhase_LayerParB(b *testing.B) {
	f := meshB(b)
	for _, procs := range []int{1, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			benchEngineLayerProcs(b, f.seq.Steps[0].Graph, f.base, procs)
		})
	}
}

// BenchmarkEngine_SteadyRepartition is the end-to-end steady-state cycle:
// a long-lived engine repartitions after the assignment is reset to the
// pre-balance state, reusing snapshot, boundary and scratch each time.
func BenchmarkEngine_SteadyRepartition(b *testing.B) {
	f := meshA(b)
	g := f.seq.Steps[0].Graph
	eng := engine.New(g, engine.Options{})
	base := f.base.Clone()
	base.Grow(g.Order())
	a := base.Clone()
	if _, err := eng.Repartition(context.Background(), a); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(a.Part, base.Part)
		if _, err := eng.Repartition(context.Background(), a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngine_SteadyRepartitionPar is the steady-state cycle at each
// worker count: with the LP kernels column-sharded behind the same
// worker group, this is where the balance+refine wall clock scales —
// and the allocs/op column must read 0 at every procs value (the
// per-worker scratch is part of the engine's arenas).
func BenchmarkEngine_SteadyRepartitionPar(b *testing.B) {
	f := meshA(b)
	g := f.seq.Steps[0].Graph
	for _, procs := range benchProcs {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			eng := engine.New(g, engine.Options{Parallelism: procs})
			base := f.base.Clone()
			base.Grow(g.Order())
			a := base.Clone()
			if _, err := eng.Repartition(context.Background(), a); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(a.Part, base.Part)
				if _, err := eng.Repartition(context.Background(), a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPhase_BalanceLP(b *testing.B) {
	prob := balanceLP(b)
	s := lp.Bounded{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(context.Background(), prob); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Workload generation (Figures 10/12/13) -----------------------------------

func BenchmarkMeshGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mesh.PaperSequenceA(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Scaling characteristics ---------------------------------------------------

// benchLayerAt measures layering cost at a given mesh size (it is the
// phase whose cost scales with |V|+|E|, unlike the LP).
func benchLayerAt(b *testing.B, n int) {
	seq, err := mesh.GenerateChained(n, []int{n / 50}, 7)
	if err != nil {
		b.Fatal(err)
	}
	part, err := spectral.RSB(seq.Base, 32, spectral.Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	a := &partition.Assignment{Part: part, P: 32}
	g := seq.Steps[0].Graph
	if _, _, err := core.Assign(g, a); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layering.Layer(g, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLayer_1k(b *testing.B) { benchLayerAt(b, 1000) }
func BenchmarkLayer_4k(b *testing.B) { benchLayerAt(b, 4000) }

func BenchmarkRSB_1k(b *testing.B) {
	seq, err := mesh.GenerateChained(1000, []int{10}, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectral.RSB(seq.Base, 32, spectral.Options{Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeshInsert(b *testing.B) {
	gen, err := mesh.NewGenerator(2000, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.RefineDisk(geom.Point{X: 0.5, Y: 0.5}, 0.25, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatched measures the paper's batched-addition fallback.
func BenchmarkBatched(b *testing.B) {
	f := meshA(b)
	g := f.seq.Steps[3].Graph // largest chained step
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := f.base.Clone()
		if _, err := core.RepartitionInBatches(context.Background(), g, a, core.Options{}, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphOps measures the mutable-graph primitives under churn.
func BenchmarkGraphOps(b *testing.B) {
	g := graph.Grid(50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := g.AddVertex(1)
		_ = g.AddEdge(v, graph.Vertex(i%2500), 1)
		_ = g.RemoveVertex(v)
	}
}

// BenchmarkEngine_SmallDeltaRepartition measures the warm engine
// absorbing a one-edge delta per call: the journal-driven CSR patch,
// the incremental boundary/size sync and the boundary-seeded cut
// reports make this edit-proportional rather than O(n+m).
func BenchmarkEngine_SmallDeltaRepartition(b *testing.B) {
	f := meshA(b)
	g := f.seq.Steps[0].Graph
	eng := engine.New(g, engine.Options{})
	a := f.base.Clone()
	a.Grow(g.Order())
	if _, err := eng.Repartition(context.Background(), a); err != nil {
		b.Fatal(err)
	}
	u, v := Vertex(0), Vertex(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.HasEdge(u, v) {
			if err := g.RemoveEdge(u, v); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := g.AddEdge(u, v, 1); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := eng.Repartition(context.Background(), a); err != nil {
			b.Fatal(err)
		}
	}
}
