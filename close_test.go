package igp

import (
	"context"
	"errors"
	"testing"
)

// TestEngineClose locks the public Close contract: idempotent, a closed
// engine fails Repartition with the typed ErrEngineClosed, and stats
// cloned before the close survive it.
func TestEngineClose(t *testing.T) {
	g, a := grownMesh(t, 400, 8, 40, 11)
	eng, err := NewEngine(g, WithRefine())
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Repartition(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	kept := st.Clone()
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if eng.Graph() != g {
		t.Fatal("Graph() changed by Close")
	}
	if _, err := eng.Repartition(context.Background(), a); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Repartition after Close: want ErrEngineClosed, got %v", err)
	}
	if len(kept.EpsilonUsed) != kept.Stages {
		t.Fatalf("clone corrupted: %d epsilons for %d stages", len(kept.EpsilonUsed), kept.Stages)
	}

	// The batched path must refuse a closed engine too.
	eng2, err := NewEngine(g, WithBatches(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Repartition(context.Background(), a); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("batched Repartition after Close: want ErrEngineClosed, got %v", err)
	}
}
