#!/usr/bin/env bash
# bench.sh — verify step + phase-benchmark trajectory.
#
# Runs static checks (go vet, gofmt), the tier-1 tests, a race-detector
# pass, then the hot-path phase benchmarks with -benchmem, and writes the
# parsed results — including the pipeline's per-phase wall-clock from
# Stats.PhaseTimings (via `igpbench -table phases`) — to BENCH_<N>.json
# (default BENCH_1.json) at the repo root so successive PRs accumulate a
# performance trajectory.
#
# Usage:  scripts/bench.sh [N]
#   N        trajectory index (default 1)
#   BENCH_FILTER   override the benchmark regexp
#   BENCH_TIME     override -benchtime (default 200x)
#   BENCH_SKIP_RACE=1   skip the race-detector pass (slow machines)
#   BENCH_SMOKE=1  CI smoke mode: short -benchtime (default 10x) and the
#                  race pass skipped unless BENCH_SKIP_RACE=0 — quick
#                  enough to run on every PR while still producing a
#                  complete BENCH_<N>.json artifact
set -euo pipefail
cd "$(dirname "$0")/.."

idx="${1:-1}"
out="BENCH_${idx}.json"
filter="${BENCH_FILTER:-BenchmarkPhase_|BenchmarkRefine_|BenchmarkEngine_|BenchmarkFig11_IGP}"
if [ "${BENCH_SMOKE:-0}" = "1" ]; then
    benchtime="${BENCH_TIME:-10x}"
    : "${BENCH_SKIP_RACE:=1}"
else
    benchtime="${BENCH_TIME:-200x}"
    : "${BENCH_SKIP_RACE:=0}"
fi

echo "== go vet =="
go vet ./...

echo "== gofmt =="
# awk (not `grep -v`) filters the vendor prefix: grep exits 1 on empty
# input, which `set -o pipefail` would turn into a hard failure on a
# clean tree with no vendor/ directory. awk exits 0 either way, on
# every POSIX implementation.
badfmt="$(gofmt -l . | awk '!/^vendor\//')"
if [ -n "$badfmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$badfmt" >&2
    exit 1
fi

echo "== go test (tier 1) =="
go test ./... > /dev/null

if [ "${BENCH_SKIP_RACE}" != "1" ]; then
    echo "== go test -race =="
    go test -race ./... > /dev/null
fi

echo "== phase timings (igpbench -table phases) =="
phases="$(go run ./cmd/igpbench -table phases)"
echo "$phases"

# Per-solver phase/pivot rows: the same workload under every built-in
# simplex, so the trajectory records warm ("dual-warm") vs cold pivot
# counts side by side. The bounded row reuses the record measured above.
echo "== per-solver phase timings =="
solver_rows="$phases"
for s in dense revised dual-warm mwu; do
    row="$(go run ./cmd/igpbench -table phases -solver "$s")"
    echo "$row"
    solver_rows="$solver_rows,
    $row"
done

# Sequential vs parallel pipeline rows: the sharded-kernel speedup
# evidence. procs=1 and the acceptance-criterion procs=8 row are
# measured fresh (8 workers on a c-core host time-slice c cores, so the
# 8-worker row demonstrates real speedup on any multi-core machine and
# only degenerates on 1 CPU); the base record above already ran at the
# default GOMAXPROCS parallelism and is reused as the third row.
echo "== per-procs phase timings =="
procs_rows=""
for pr in 1 8; do
    row="$(go run ./cmd/igpbench -table phases -procs "$pr")"
    echo "$row"
    if [ -n "$procs_rows" ]; then
        procs_rows="$procs_rows,
    $row"
    else
        procs_rows="$row"
    fi
done
echo "$phases"
procs_rows="$procs_rows,
    $phases"

# LP-phase scaling rows: the first mesh-B refinement at P=128 — LPs big
# enough that the simplex kernels shard — once per worker count, so the
# trajectory records balance/refine wall clock versus workers and the
# lp_parallel counter proving the LP kernels forked. Appended to the
# same phase_timings_by_procs list; the rows are distinguished by their
# "workload" field.
echo "== LP-phase scaling (igpbench -table lp-procs) =="
while IFS= read -r row; do
    echo "$row"
    procs_rows="$procs_rows,
    $row"
done < <(go run ./cmd/igpbench -table lp-procs)

# Per-solver comparison table: the same IGPR workload once per
# registered solver — wall clock, LP iteration totals, cut quality and
# the approximate "mwu" solver's exact-fallback count side by side.
echo "== solver comparison (igpbench -table solvers) =="
solver_cmp="$(go run ./cmd/igpbench -table solvers -json)"
echo "$solver_cmp"

# Incremental-edit workload: warm k-edit Repartition cost vs delta size
# on both mesh families, against the WithFullRefresh full-recomputation
# baseline — the evidence that the journal-driven delta pipeline makes
# warm refresh cost scale with the edit, not with n+m.
echo "== incremental-edit workload (igpbench -table incremental) =="
incr="$(go run ./cmd/igpbench -table incremental -json)"
echo "$incr"

# Serve latency: the igpserve stack (session pool + coalescing +
# admission control) measured end to end over real HTTP at several
# concurrency levels. Skipped in smoke mode — the table boots servers
# and drives thousands of requests, too slow for the per-PR CI lane
# (the CI serve job's igpserve -smoke covers the stack there).
if [ "${BENCH_SMOKE:-0}" = "1" ]; then
    echo "== serve latency: skipped (BENCH_SMOKE=1) =="
    serve_rows=""
else
    echo "== serve latency (igpbench -table serve) =="
    serve_rows=""
    while IFS= read -r row; do
        echo "$row"
        if [ -n "$serve_rows" ]; then
            serve_rows="$serve_rows,
    $row"
        else
            serve_rows="$row"
        fi
    done < <(go run ./cmd/igpbench -table serve -json)
fi

# Large-graph multilevel tier: V-cycle cold/settle/warm rows on the
# paper-scale grid and power-law workloads at P=8, repeated at worker
# counts 1 and 8 (-procslist) so the artifact records the V-cycle
# scaling curve — the rows are bit-identical across counts, only the
# wall clock moves. Full mode runs n = 10⁵ with the flat RSB
# from-scratch baseline on the grid — the evidence that the V-cycle
# beats flat at n ≥ 10⁵ and that a warm repaired Repartition costs
# milliseconds. Smoke mode shrinks n and drops the flat baseline
# (minutes of wall clock) but keeps -check, so the tier's hard contract
# still gates CI.
if [ "${BENCH_SMOKE:-0}" = "1" ]; then
    echo "== multilevel tier (igpbench -table multilevel -check, smoke n=20000) =="
    ml="$(go run ./cmd/igpbench -table multilevel -check -n 20000 -p 8 -procslist 1,8 -json)"
else
    echo "== multilevel tier (igpbench -table multilevel, n=100000) =="
    ml="$(go run ./cmd/igpbench -table multilevel -n 100000 -p 8 -procslist 1,8 -json)"
fi
echo "$ml"

# Million-vertex tier: the paper-scale n ≈ 10⁶ workloads at worker
# counts 1 and 8, in -check mode (the flat RSB baseline at 10⁶ is
# hours, not minutes — the 10⁵ row above anchors the flat comparison).
# Full mode only: several minutes of wall clock, far too slow for the
# per-PR smoke lane.
if [ "${BENCH_SMOKE:-0}" = "1" ]; then
    echo "== multilevel 10^6 tier: skipped (BENCH_SMOKE=1) =="
    ml1m="null"
else
    echo "== multilevel 10^6 tier (igpbench -table multilevel -check, n=1000000) =="
    ml1m="$(go run ./cmd/igpbench -table multilevel -check -n 1000000 -p 8 -procslist 1,8 -json)"
fi
echo "$ml1m"

echo "== benchmarks ($filter) =="
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench "$filter" -benchmem -benchtime "$benchtime" . | tee "$raw"

# Parse `BenchmarkName  N  X ns/op  Y B/op  Z allocs/op` lines into JSON,
# folding in the per-phase timing record and the per-solver/per-procs rows.
awk -v idx="$idx" -v phases="$phases" -v solvers="$solver_rows" -v procs="$procs_rows" -v cmp="$solver_cmp" -v incr="$incr" -v serve="$serve_rows" -v ml="$ml" -v ml1m="$ml1m" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    rows[n++] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                        name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs))
}
END {
    if (serve == "") serve_json = "[]"
    else             serve_json = sprintf("[\n    %s\n  ]", serve)
    printf "{\n  \"trajectory\": %s,\n  \"phase_timings\": %s,\n  \"phase_timings_by_solver\": [\n    %s\n  ],\n  \"phase_timings_by_procs\": [\n    %s\n  ],\n  \"solver_comparison\": %s,\n  \"incremental_edits\": %s,\n  \"serve_latency\": %s,\n  \"multilevel\": %s,\n  \"multilevel_1m\": %s,\n  \"benchmarks\": [\n", idx, phases, solvers, procs, cmp, incr, serve_json, ml, ml1m
    for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i < n-1 ? "," : "")
    printf "  ]\n}\n"
}' "$raw" > "$out"

echo "wrote $out"
